//! One function per table/figure of the paper's evaluation.
//!
//! Every function renders its artefact as plain text (tables and ASCII
//! bars) so the harness output can be diffed against `EXPERIMENTS.md`.
//! Absolute numbers differ from the paper (synthetic technology and
//! design); the *shapes* — who wins, by roughly what factor, where the
//! crossovers fall — are the reproduction target.

// Invariant behind every `expect` below: experiments run exclusively on
// generator-produced libraries and designs, so a failed lookup or synthesis
// is a harness bug worth crashing over, never an input condition. Each
// message names the invariant it asserts.
#![allow(clippy::expect_used)]

use std::fmt::Write as _;

use varitune_core::{TuningMethod, TuningParams};
use varitune_libchar::interp;
use varitune_libchar::TableKind;
use varitune_liberty::{CellKind, Lut};
use varitune_sta::paths::depth_histogram;
use varitune_sta::PathTiming;
use varitune_variation::mc::{local_variation_share, simulate_path, PathCell, VariationMode};
use varitune_variation::{ProcessCorner, Summary};

use crate::text::{bar, f3, pct, table};
use crate::Ctx;

/// Fig. 1 — why variability (σ/μ) is the wrong selection metric.
pub fn fig1(_ctx: &Ctx) -> String {
    let left = Summary {
        n: 30,
        mean: 0.5,
        std_dev: 0.01,
        min: 0.0,
        max: 1.0,
    };
    let right = Summary {
        n: 30,
        mean: 5.0,
        std_dev: 0.1,
        min: 0.0,
        max: 10.0,
    };
    let rows = vec![
        vec![
            "left".into(),
            f3(left.mean),
            f3(left.std_dev),
            f3(left.variability().expect("nonzero mean")),
        ],
        vec![
            "right".into(),
            f3(right.mean),
            f3(right.std_dev),
            f3(right.variability().expect("nonzero mean")),
        ],
    ];
    let mut s = String::from("Fig. 1 — identical variability, different dispersion\n");
    s.push_str(&table(&["pdf", "mean", "sigma", "variability"], &rows));
    s.push_str(
        "Both PDFs share variability 0.020, yet the left one has 10x less\n\
         absolute spread -> the standard deviation, not the coefficient of\n\
         variation, is the tuning metric (Section III).\n",
    );
    s
}

/// Fig. 2 — the statistical-library construction pipeline on one entry.
pub fn fig2(ctx: &Ctx) -> String {
    let stat = &ctx.flow.stat;
    let cell = "INV_1";
    let mean_lut = delay_lut(ctx, cell, true);
    let sigma_lut = delay_lut(ctx, cell, false);
    let (i, j) = (3, 3);
    let mut s = format!(
        "Fig. 2 — statistical library from {} MC libraries ({} cells)\n",
        stat.sample_count,
        stat.mean.cells.len()
    );
    let _ = writeln!(
        s,
        "example entry {cell} cell_rise[{i}][{j}] (slew {} ns, load {} pF):",
        f3(mean_lut.index_slew[i]),
        f3(mean_lut.index_load[j]),
    );
    let _ = writeln!(s, "  mean  = {} ns", f3(mean_lut.at(i, j)));
    let _ = writeln!(s, "  sigma = {} ns", f3(sigma_lut.at(i, j)));
    let _ = writeln!(
        s,
        "tables in statistical library: {} (structure identical to nominal)",
        stat.mean.table_count()
    );
    s
}

/// Fig. 3 — bilinear interpolation (eqs. 2–4) on a real LUT.
pub fn fig3(ctx: &Ctx) -> String {
    let lut = delay_lut(ctx, "INV_2", true);
    let (slew, load) = (
        0.5 * (lut.index_slew[2] + lut.index_slew[3]),
        0.5 * (lut.index_load[2] + lut.index_load[3]),
    );
    let x = lut.interpolate(slew, load).expect("in-grid query");
    let reference = interp::interpolate_reference(&lut, slew, load).expect("in-grid query");
    let mut s = String::from("Fig. 3 — bilinear interpolation (eqs. 2-4)\n");
    let _ = writeln!(
        s,
        "query (S = {} ns, L = {} pF) between grid lines:",
        f3(slew),
        f3(load)
    );
    let _ = writeln!(
        s,
        "  Q11 = {}  Q12 = {}  Q21 = {}  Q22 = {}",
        f3(lut.at(2, 2)),
        f3(lut.at(2, 3)),
        f3(lut.at(3, 2)),
        f3(lut.at(3, 3)),
    );
    let _ = writeln!(s, "  X (production) = {} ns", f3(x));
    let _ = writeln!(s, "  X (eqs. 2-4 reference) = {} ns", f3(reference));
    s
}

/// Fig. 4 — sigma surfaces of one inverter at several drive strengths.
pub fn fig4(ctx: &Ctx) -> String {
    let mut rows = Vec::new();
    let mut drives: Vec<f64> = ctx
        .flow
        .stat
        .sigma
        .cells
        .iter()
        .filter(|c| c.kind() == CellKind::Inverter)
        .filter_map(|c| c.drive_strength())
        .collect();
    drives.sort_by(f64::total_cmp);
    for d in drives {
        let name = if d.fract() == 0.0 {
            format!("INV_{}", d as i64)
        } else {
            format!("INV_{}", format!("{d:.1}").replace('.', "P"))
        };
        let Some(lut) = try_delay_lut(ctx, &name, false) else {
            continue;
        };
        let max = lut.max_value().expect("non-empty");
        let min = lut.min_value().expect("non-empty");
        let grad = mean_gradient(&lut);
        rows.push(vec![name, f3(min), f3(max), f3(grad)]);
    }
    let mut s = String::from(
        "Fig. 4 — inverter delay-sigma surfaces vs drive strength\n\
         (sigma falls and the surface flattens as drive grows — Pelgrom)\n",
    );
    s.push_str(&table(
        &["cell", "min sigma", "max sigma", "mean |gradient|"],
        &rows,
    ));
    s
}

/// Fig. 5 — sigma surfaces of every drive-6 cell.
pub fn fig5(ctx: &Ctx) -> String {
    let mut rows = Vec::new();
    for cell in &ctx.flow.stat.sigma.cells {
        if cell.drive_strength() != Some(6.0) {
            continue;
        }
        let Some(lut) = try_delay_lut(ctx, &cell.name, false) else {
            continue;
        };
        rows.push(vec![
            cell.name.clone(),
            f3(*lut.index_load.last().expect("non-empty axis")),
            f3(lut.max_value().expect("non-empty")),
            f3(mean_gradient(&lut)),
        ]);
    }
    let mut s = String::from(
        "Fig. 5 — delay-sigma surfaces of all drive-strength-6 cells\n\
         (load ranges and gradients differ per function, e.g. NR4_6)\n",
    );
    s.push_str(&table(
        &["cell", "max load (pF)", "max sigma", "mean |gradient|"],
        &rows,
    ));
    s
}

/// Fig. 6 — the largest rectangle on a binarized LUT, drawn in ASCII.
pub fn fig6(ctx: &Ctx) -> String {
    let lut = delay_lut(ctx, "INV_1", false);
    let threshold =
        0.5 * (lut.max_value().expect("non-empty") + lut.min_value().expect("non-empty"));
    let accept = varitune_core::slope::binarize(&lut, threshold);
    let rect = varitune_core::largest_rectangle(&accept).expect("half the table accepts");
    let mut s = format!(
        "Fig. 6 — largest rectangle on INV_1's binary LUT (threshold {} ns)\n",
        f3(threshold)
    );
    s.push_str("rows = slew index, cols = load index; R marks the rectangle\n");
    for (i, row) in accept.iter().enumerate() {
        for (j, &ok) in row.iter().enumerate() {
            let c = if rect.contains(i, j) {
                'R'
            } else if ok {
                '1'
            } else {
                '0'
            };
            s.push(c);
            s.push(' ');
        }
        s.push('\n');
    }
    let _ = writeln!(
        s,
        "marked (furthest) entry sigma = {} ns at [{}][{}]",
        f3(lut.at(rect.row_hi, rect.col_hi)),
        rect.row_hi,
        rect.col_hi
    );
    s
}

/// Fig. 7 — the sigma landscape of the whole statistical library.
pub fn fig7(ctx: &Ctx) -> String {
    let mut maxima = Vec::new();
    for cell in &ctx.flow.stat.sigma.cells {
        if let Some(v) = ctx.flow.stat.worst_delay_sigma(&cell.name) {
            maxima.push(v);
        }
    }
    maxima.sort_by(f64::total_cmp);
    let n = maxima.len();
    let mut s = format!(
        "Fig. 7 — delay-sigma landscape of the {} statistical library ({} cells)\n",
        ctx.flow.stat.mean.name, n
    );
    let _ = writeln!(
        s,
        "worst-entry sigma per cell: min {}  median {}  max {} (ns)",
        f3(maxima[0]),
        f3(maxima[n / 2]),
        f3(maxima[n - 1])
    );
    // A coarse ASCII histogram over 8 buckets.
    let (counts, width) =
        varitune_variation::stats::histogram(&maxima, maxima[0], maxima[n - 1] + 1e-12, 8);
    let peak = *counts.iter().max().expect("non-empty") as f64;
    for (k, &c) in counts.iter().enumerate() {
        let lo = maxima[0] + k as f64 * width;
        let _ = writeln!(
            s,
            "{:>7} ns | {:<40} {}",
            f3(lo),
            bar(c as f64, peak, 40),
            c
        );
    }
    s
}

/// Fig. 8 — clock period versus area for the baseline library.
pub fn fig8(ctx: &Ctx) -> String {
    let p = ctx.periods;
    let periods: Vec<f64> = [1.0, 1.04, 1.15, 1.3, 1.66, 2.2, 3.0, 4.15]
        .iter()
        .map(|f| (f * p.high * 100.0).round() / 100.0)
        .collect();
    let mut rows = Vec::new();
    let mut max_area: f64 = 0.0;
    let mut pts = Vec::new();
    for &period in &periods {
        let run = ctx.baseline(period);
        max_area = max_area.max(run.area());
        pts.push((period, run.area(), run.synthesis.met_timing));
    }
    for (period, area, met) in &pts {
        rows.push(vec![
            format!("{period:.2}"),
            format!("{area:.0}"),
            bar(*area, max_area, 36),
            if *met {
                "met".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    let mut s = String::from(
        "Fig. 8 — clock period vs total cell area (baseline library)\n\
         (area flattens once timing is easy; the knee marks relaxed timing)\n",
    );
    s.push_str(&table(&["period (ns)", "area (um^2)", "", "timing"], &rows));
    s
}

/// Table 1 — the clock periods used by every experiment.
pub fn tab1(ctx: &Ctx) -> String {
    let p = ctx.periods;
    let rows = vec![
        vec![
            "High performance".into(),
            format!("{:.2}", p.high),
            "2.41".into(),
        ],
        vec![
            "Close to maximum check".into(),
            format!("{:.2}", p.check),
            "2.50".into(),
        ],
        vec![
            "Medium performance".into(),
            format!("{:.2}", p.medium),
            "4.00".into(),
        ],
        vec![
            "Low performance".into(),
            format!("{:.2}", p.low),
            "10.00".into(),
        ],
    ];
    let mut s = String::from(
        "Table 1 — clock periods (ours derived from the synthetic design's\n\
         minimum achievable period; the paper's absolute values shown for\n\
         reference)\n",
    );
    s.push_str(&table(&["constraint", "ours (ns)", "paper (ns)"], &rows));
    s
}

/// Table 2 — the constraint-parameter grid.
pub fn tab2(_ctx: &Ctx) -> String {
    let rows = vec![
        vec![
            "Load slope bounds".into(),
            "1, 0.05, 0.03, 0.01".into(),
            "1".into(),
        ],
        vec![
            "Slew slope bounds".into(),
            "1, 0.05, 0.03, 0.01".into(),
            "0.06".into(),
        ],
        vec![
            "Sigma ceiling".into(),
            "0.04, 0.03, 0.02, 0.01".into(),
            "100".into(),
        ],
    ];
    let mut s = String::from(
        "Table 2 — constraint parameters used during threshold extraction\n\
         (one parameter sweeps, the others stay at their defaults)\n",
    );
    s.push_str(&table(&["parameter", "sweep values", "default"], &rows));
    s
}

/// Fig. 9 — cell usage, baseline vs best sigma-ceiling tuning, at the high
/// and low performance periods.
pub fn fig9(ctx: &Ctx) -> String {
    let mut s = format!(
        "Fig. 9 — cell use, baseline vs tuned ({})\n",
        TuningMethod::SigmaCeiling
    );
    for (label, period) in [
        ("(a) high performance", ctx.periods.high),
        ("(b) low performance", ctx.periods.low),
    ] {
        let baseline = ctx.baseline(period);
        let params = ctx
            .best_under_cap(TuningMethod::SigmaCeiling, period, 10.0)
            .map(|(p, _, _)| p)
            .unwrap_or_else(|| TuningParams::with_sigma_ceiling(0.02));
        let tuned = ctx.tuned_run(TuningMethod::SigmaCeiling, params, period);
        let rows: Vec<Vec<String>> = varitune_synth::usage_comparison(
            &baseline.synthesis.design.cell_usage(&ctx.flow.nominal),
            &tuned.1.synthesis.design.cell_usage(&ctx.flow.nominal),
            ctx.scale.usage_threshold,
        )
        .into_iter()
        .map(|r| {
            vec![
                r.cell,
                r.baseline.to_string(),
                r.tuned.to_string(),
                bar(r.tuned as f64, r.baseline.max(r.tuned).max(1) as f64, 20),
            ]
        })
        .collect();
        let _ = writeln!(
            s,
            "\n{label} @ {period:.2} ns (cells used > {} times; ceiling {})",
            ctx.scale.usage_threshold, params.sigma_ceiling
        );
        s.push_str(&table(&["cell", "baseline", "tuned", ""], &rows));
    }
    s.push_str(
        "\nExpected shape: tuned designs shift to higher drive strengths and\n\
         more inverters (buffering), as in the paper's Fig. 9.\n",
    );
    s
}

/// Fig. 10 — best sigma decrease (area < +10 %) per method and period.
pub fn fig10(ctx: &Ctx) -> String {
    let mut s = String::from(
        "Fig. 10 — highest sigma reduction at <10% area increase\n\
         (per tuning method and clock period)\n",
    );
    let mut rows = Vec::new();
    for (label, period) in ctx.periods.all() {
        let baseline = ctx.baseline(period);
        for method in TuningMethod::ALL {
            let best = ctx.best_under_cap(method, period, 10.0);
            match best {
                Some((params, run, cmp)) => rows.push(vec![
                    format!("{label} {period:.2}"),
                    method.to_string(),
                    format!("{}", params.varied_value(method)),
                    pct(-cmp.sigma_reduction_pct()),
                    pct(cmp.area_increase_pct()),
                    f3(run.1.design.sigma),
                    format!("{:.0}", run.1.area()),
                ]),
                None => rows.push(vec![
                    format!("{label} {period:.2}"),
                    method.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        rows.push(vec![
            format!("{label} {period:.2}"),
            "(baseline)".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            f3(baseline.design.sigma),
            format!("{:.0}", baseline.area()),
        ]);
    }
    s.push_str(&table(
        &[
            "period",
            "method",
            "bound",
            "sigma delta",
            "area delta",
            "sigma (ns)",
            "area (um^2)",
        ],
        &rows,
    ));
    s.push_str(
        "\nExpected shape (paper): sigma ceiling gives the largest reduction\n\
         (37% @ +7% area at high performance); strength-clustered methods\n\
         trade smaller reductions for less area; relaxed clocks start from a\n\
         larger baseline sigma.\n",
    );
    s
}

/// Table 3 — the winning constraint parameter per method and period.
pub fn tab3(ctx: &Ctx) -> String {
    let mut s = String::from("Table 3 — constraint parameter achieving Fig. 10's best reduction\n");
    let mut rows = Vec::new();
    for method in TuningMethod::ALL {
        let mut row = vec![method.to_string()];
        for (_, period) in ctx.periods.all() {
            match ctx.best_under_cap(method, period, 10.0) {
                Some((params, _, _)) => row.push(format!("{}", params.varied_value(method))),
                None => row.push("-".into()),
            }
        }
        rows.push(row);
    }
    let p = ctx.periods;
    let headers = [
        "method".to_string(),
        format!("{:.2}", p.high),
        format!("{:.2}", p.check),
        format!("{:.2}", p.medium),
        format!("{:.2}", p.low),
    ];
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    s.push_str(&table(&hdr_refs, &rows));
    s
}

/// Fig. 11 — the sigma/area trade-off across the sigma-ceiling sweep at the
/// high-performance period.
pub fn fig11(ctx: &Ctx) -> String {
    let period = ctx.periods.high;
    let baseline = ctx.baseline(period);
    let mut rows = Vec::new();
    for params in TuningParams::table2_sweep(TuningMethod::SigmaCeiling) {
        let run = ctx.tuned_run(TuningMethod::SigmaCeiling, params, period);
        let cmp = varitune_core::Comparison::between(&baseline, &run.1);
        rows.push(vec![
            format!("{}", params.sigma_ceiling),
            pct(-cmp.sigma_reduction_pct()),
            pct(cmp.area_increase_pct()),
            f3(run.1.design.sigma),
            format!("{:.0}", run.1.area()),
        ]);
    }
    let mut s = format!(
        "Fig. 11 — sigma vs area trade-off, {} @ {period:.2} ns\n\
         (tighter ceilings cut more sigma but cost more area)\n",
        TuningMethod::SigmaCeiling
    );
    s.push_str(&table(
        &[
            "ceiling",
            "sigma delta",
            "area delta",
            "sigma (ns)",
            "area (um^2)",
        ],
        &rows,
    ));
    s
}

/// Fig. 12 — path-depth histograms, baseline vs sigma-ceiling tuned.
pub fn fig12(ctx: &Ctx) -> String {
    let period = ctx.periods.high;
    let baseline = ctx.baseline(period);
    let tuned = best_ceiling_run(ctx, period);
    let hb = depth_histogram(&baseline.paths);
    let ht = depth_histogram(&tuned.paths);
    let maxd = hb.len().max(ht.len());
    let peak = hb.iter().chain(ht.iter()).copied().max().unwrap_or(1) as f64;
    let mut s = format!("Fig. 12 — worst-path depth per unique endpoint @ {period:.2} ns\n");
    let _ = writeln!(
        s,
        "{:>5}  {:<24} {:<24}",
        "depth",
        "baseline",
        TuningMethod::SigmaCeiling
    );
    for d in 0..maxd {
        let b = hb.get(d).copied().unwrap_or(0);
        let t = ht.get(d).copied().unwrap_or(0);
        if b == 0 && t == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "{d:>5}  {:<24} {:<24}",
            format!("{:<4} {}", b, bar(b as f64, peak, 18)),
            format!("{:<4} {}", t, bar(t as f64, peak, 18)),
        );
    }
    let mean_depth = |paths: &[PathTiming]| {
        paths.iter().map(PathTiming::depth).sum::<usize>() as f64 / paths.len() as f64
    };
    let _ = writeln!(
        s,
        "\nmean depth: baseline {:.2}, tuned {:.2} (tuning restructures paths)",
        mean_depth(&baseline.paths),
        mean_depth(&tuned.paths)
    );
    s
}

/// Fig. 13 — path sigma vs path depth for baseline and tuned designs.
pub fn fig13(ctx: &Ctx) -> String {
    let period = ctx.periods.high;
    let baseline = ctx.baseline(period);
    let tuned = best_ceiling_run(ctx, period);
    let bucket = |paths: &[PathTiming]| {
        let mut rows = Vec::new();
        let maxd = paths.iter().map(PathTiming::depth).max().unwrap_or(0);
        let step = (maxd / 8).max(1);
        let mut d = 1;
        while d <= maxd {
            let hi = d + step - 1;
            let in_bucket: Vec<&PathTiming> = paths
                .iter()
                .filter(|p| p.depth() >= d && p.depth() <= hi)
                .collect();
            if !in_bucket.is_empty() {
                let mean_sigma =
                    in_bucket.iter().map(|p| p.sigma).sum::<f64>() / in_bucket.len() as f64;
                let max_sigma = in_bucket
                    .iter()
                    .map(|p| p.sigma)
                    .fold(f64::NEG_INFINITY, f64::max);
                rows.push((d, hi, in_bucket.len(), mean_sigma, max_sigma));
            }
            d += step;
        }
        rows
    };
    let mut s = format!("Fig. 13 — path sigma vs path depth @ {period:.2} ns\n");
    let ceiling = TuningMethod::SigmaCeiling.to_string();
    for (label, paths) in [
        ("baseline", &baseline.paths),
        (ceiling.as_str(), &tuned.paths),
    ] {
        let _ = writeln!(s, "\n{label}:");
        let rows: Vec<Vec<String>> = bucket(paths)
            .into_iter()
            .map(|(lo, hi, n, mean, max)| {
                vec![format!("{lo}-{hi}"), n.to_string(), f3(mean), f3(max)]
            })
            .collect();
        s.push_str(&table(
            &["depth", "paths", "mean sigma", "max sigma"],
            &rows,
        ));
    }
    s.push_str(
        "\nExpected shape: no monotone depth->sigma relation; the cells on the\n\
         path (drive strengths), not its length, set the sigma (paper Fig. 13).\n",
    );
    s
}

/// Fig. 14 — mean + 3σ per path, sorted by depth, baseline vs tuned.
pub fn fig14(ctx: &Ctx) -> String {
    let period = ctx.periods.high;
    let eff = ctx.synth_config(period).sta.effective_period();
    let mut s = format!(
        "Fig. 14 — mean + 3 sigma path delay vs depth @ {period:.2} ns\n\
         (effective period after guard band: {eff:.2} ns)\n"
    );
    let ceiling = format!("(b) {}", TuningMethod::SigmaCeiling);
    for (label, run) in [
        ("(a) baseline", ctx.baseline(period)),
        (ceiling.as_str(), best_ceiling_run(ctx, period)),
    ] {
        let mut paths: Vec<&PathTiming> = run.paths.iter().collect();
        paths.sort_by_key(|p| p.depth());
        let deciles = 10usize;
        let chunk = (paths.len() / deciles).max(1);
        let mut rows = Vec::new();
        for c in paths.chunks(chunk) {
            let lo = c.first().expect("non-empty").depth();
            let hi = c.last().expect("non-empty").depth();
            let mean = c.iter().map(|p| p.mean).sum::<f64>() / c.len() as f64;
            let m3s = c
                .iter()
                .map(|p| p.mean_plus_k_sigma(3.0))
                .fold(f64::NEG_INFINITY, f64::max);
            rows.push(vec![
                format!("{lo}-{hi}"),
                c.len().to_string(),
                f3(mean),
                f3(m3s),
                if m3s > eff {
                    "FAILS +3s".into()
                } else {
                    "ok".into()
                },
            ]);
        }
        let worst = run
            .paths
            .iter()
            .map(|p| p.mean_plus_k_sigma(3.0))
            .fold(f64::NEG_INFINITY, f64::max);
        let _ = writeln!(s, "\n{label}: worst mean+3sigma = {} ns", f3(worst));
        s.push_str(&table(
            &["depth", "paths", "mean (ns)", "max mean+3s", "vs period"],
            &rows,
        ));
    }
    s.push_str(
        "\nExpected shape: tuning homogenizes the cloud and lowers the worst\n\
         mean+3sigma (paper: 2.23 ns -> 2.19 ns).\n",
    );
    s
}

/// Fig. 15 — path Monte Carlo across corners: mean and sigma scale by the
/// same factor.
pub fn fig15(ctx: &Ctx) -> String {
    let (labels, mc_paths) = extracted_paths(ctx);
    let n = ctx.scale.mc_samples;
    let mut s = format!(
        "Fig. 15 — corner Monte Carlo (N = {n}) on three extracted paths\n\
         (local variation only; values relative to the typical corner)\n"
    );
    for (label, path) in labels.iter().zip(&mc_paths) {
        let typ = simulate_path(
            path,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            n,
            15,
        );
        let mut rows = Vec::new();
        for corner in ProcessCorner::ALL {
            let r = simulate_path(path, corner, VariationMode::LocalOnly, n, 15);
            rows.push(vec![
                corner.to_string(),
                f3(r.summary.mean),
                f3(r.summary.std_dev),
                format!("{:.3}", r.summary.mean / typ.summary.mean),
                format!("{:.3}", r.summary.std_dev / typ.summary.std_dev),
            ]);
        }
        let _ = writeln!(s, "\n{label} ({} cells):", path.len());
        s.push_str(&table(
            &["corner", "mean (ns)", "sigma (ns)", "mean rel", "sigma rel"],
            &rows,
        ));
    }
    s.push_str(
        "\nExpected shape: mean rel ~= sigma rel at every corner, so the\n\
         tuning transfers across PVT corners (paper Fig. 15).\n",
    );
    s
}

/// Fig. 16 — global+local vs local-only MC: the local share decays with
/// path depth.
pub fn fig16(ctx: &Ctx) -> String {
    let (labels, mc_paths) = extracted_paths(ctx);
    let n = ctx.scale.mc_samples;
    let mut s = format!("Fig. 16 — variation decomposition (N = {n}) on three extracted paths\n");
    let mut rows = Vec::new();
    for (label, path) in labels.iter().zip(&mc_paths) {
        let local = simulate_path(
            path,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            n,
            16,
        );
        let both = simulate_path(
            path,
            ProcessCorner::Typical,
            VariationMode::GlobalAndLocal,
            n,
            16,
        );
        let share = local_variation_share(path, ProcessCorner::Typical, n, 16);
        rows.push(vec![
            label.clone(),
            path.len().to_string(),
            f3(local.summary.std_dev),
            f3(both.summary.std_dev),
            format!("{:.0}%", 100.0 * share),
        ]);
    }
    s.push_str(&table(
        &[
            "path",
            "cells",
            "sigma local",
            "sigma glob+loc",
            "local share",
        ],
        &rows,
    ));
    s.push_str(
        "\nExpected shape: the local share is dominant for the short path and\n\
         decays with depth (paper: 65% / 37% / 6% for 3 / 18 / 57 cells).\n",
    );
    s
}

/// Ablation A — statistical-library accuracy vs Monte-Carlo depth.
///
/// §VII.C notes the library sigma overestimates path MC "due to the low
/// number of samples" and defers more samples to future work. Here we build
/// the statistical library at several N and track how the sigma estimate of
/// a reference entry converges.
pub fn abl_samples(ctx: &Ctx) -> String {
    use varitune_libchar::{generate_mc_libraries, StatLibrary};
    let gen_cfg = &ctx.flow.config.generate;
    let nominal = &ctx.flow.nominal;
    let depths = [5usize, 10, 30, 50, 100];
    // Deepest run is the reference.
    let max_n = *depths.last().expect("non-empty");
    let all_libs = generate_mc_libraries(nominal, gen_cfg, max_n, ctx.flow.config.seed);
    let reference = StatLibrary::from_libraries(&all_libs)
        .expect("generator output is structurally uniform")
        .worst_delay_sigma("INV_1")
        .expect("INV_1 exists");
    let mut rows = Vec::new();
    for &n in &depths {
        let stat = StatLibrary::from_libraries(&all_libs[..n])
            .expect("generator output is structurally uniform");
        let sigma = stat.worst_delay_sigma("INV_1").expect("INV_1 exists");
        rows.push(vec![
            n.to_string(),
            f3(sigma),
            pct(100.0 * (sigma / reference - 1.0)),
        ]);
    }
    let mut s = String::from(
        "Ablation A — sigma-estimate convergence vs number of MC libraries\n\
         (worst INV_1 delay-sigma entry; error vs the N=100 reference)\n",
    );
    s.push_str(&table(&["N libraries", "sigma (ns)", "error"], &rows));
    s.push_str(
        "\nThe paper's N=50 keeps the estimate within a few percent; tiny N\n\
         misestimates sigma exactly as SVII.C warns.\n",
    );
    s
}

/// Ablation B — sensitivity of the design sigma to the inter-cell
/// correlation ρ the paper assumes to be zero (eq. 9 vs eq. 10).
pub fn abl_rho(ctx: &Ctx) -> String {
    use varitune_sta::paths::worst_paths;
    let period = ctx.periods.medium;
    let baseline = ctx.baseline(period);
    let mut rows = Vec::new();
    for rho in [0.0, 0.1, 0.3, 0.6, 1.0] {
        let (_, design) = worst_paths(
            &baseline.synthesis.design,
            &ctx.flow.stat.mean,
            &ctx.flow.stat,
            &baseline.synthesis.report,
            rho,
        )
        .expect("paths extract");
        rows.push(vec![
            format!("{rho:.1}"),
            f3(design.sigma),
            format!("{:.2}x", design.sigma / baseline.design.sigma),
        ]);
    }
    let mut s = format!(
        "Ablation B — design sigma vs assumed inter-cell correlation rho\n\
         (baseline design @ {period:.2} ns; the paper argues rho = 0)\n"
    );
    s.push_str(&table(&["rho", "design sigma (ns)", "vs rho=0"], &rows));
    s.push_str(
        "\nCorrelation only scales the absolute sigma; the tuning comparison\n\
         (tuned vs baseline at the same rho) is unaffected, supporting the\n\
         paper's rho = 0 simplification.\n",
    );
    s
}

/// Ablation C — corner portability of the tuned library (§VII.C at design
/// level): the same windows applied at fast/slow corners scale mean and
/// sigma by the corner factor.
pub fn abl_corners(ctx: &Ctx) -> String {
    use varitune_core::flow::{Flow, FlowConfig};
    use varitune_libchar::GenerateConfig;
    use varitune_variation::ProcessCorner;
    let mut s = String::from(
        "Ablation C — tuning portability across global corners\n\
         (libraries re-characterized at each corner; same design, same\n\
         sigma-ceiling windows scaled by the corner's delay factor)\n",
    );
    let period = ctx.periods.medium;
    let mut rows = Vec::new();
    let mut typical_sigma = None;
    for corner in ProcessCorner::ALL {
        let cfg = FlowConfig {
            generate: GenerateConfig {
                name: corner.library_name().to_string(),
                corner_factor: corner.delay_factor(),
                ..ctx.flow.config.generate.clone()
            },
            mcu: ctx.flow.config.mcu.clone(),
            // Corner libraries are expensive; half the MC depth is plenty
            // for a scaling check.
            mc_libraries: (ctx.flow.config.mc_libraries / 2).max(10),
            seed: ctx.flow.config.seed,
            rho: ctx.flow.config.rho,
            threads: ctx.flow.config.threads,
            strictness: ctx.flow.config.strictness,
        };
        let flow = Flow::prepare(cfg).expect("corner flow");
        // Synthesize at a relaxed corner-scaled period so all corners close.
        let run = flow
            .run_baseline(&ctx.synth_config(period * corner.delay_factor().max(1.0) * 1.3))
            .expect("corner baseline");
        if corner == ProcessCorner::Typical {
            typical_sigma = Some(run.design.sigma);
        }
        rows.push(vec![
            corner.library_name().to_string(),
            format!("{:.2}", corner.delay_factor()),
            f3(run.design.mean),
            f3(run.design.sigma),
        ]);
    }
    if let Some(ts) = typical_sigma {
        for row in &mut rows {
            let sigma: f64 = row[3].parse().expect("formatted above");
            row.push(format!("{:.2}", sigma / ts));
        }
    }
    s.push_str(&table(
        &[
            "library",
            "corner factor",
            "design mean",
            "design sigma",
            "sigma rel",
        ],
        &rows,
    ));
    s.push_str(
        "\nExpected shape: sigma rel tracks the corner factor, so windows\n\
         extracted at TT remain valid at FF/SS (paper SVII.C).\n",
    );
    s
}

/// Ablation D — timing yield: what the sigma reduction buys in clock speed.
///
/// The introduction argues that reducing local variation lets the designer
/// shrink the clock uncertainty and run faster. This experiment makes that
/// concrete: parametric timing yield versus deadline for the baseline and
/// the tuned design, plus the deadline each needs for 99 % / 99.9 % yield.
pub fn abl_yield(ctx: &Ctx) -> String {
    use varitune_sta::paths::{deadline_at_yield, timing_yield};
    let period = ctx.periods.high;
    let baseline = ctx.baseline(period);
    let tuned = best_ceiling_run(ctx, period);
    let mut s = format!("Ablation D — parametric timing yield @ {period:.2} ns synthesis\n");
    let d99_base = deadline_at_yield(&baseline.paths, 0.99, 1e-4).expect("valid yield query");
    let d99_tuned = deadline_at_yield(&tuned.paths, 0.99, 1e-4).expect("valid yield query");
    let sweep_hi = d99_base.max(d99_tuned) * 1.05;
    let sweep_lo = sweep_hi * 0.8;
    let mut rows = Vec::new();
    for k in 0..=8 {
        let d = sweep_lo + (sweep_hi - sweep_lo) * k as f64 / 8.0;
        rows.push(vec![
            format!("{d:.3}"),
            format!("{:.4}", timing_yield(&baseline.paths, d)),
            format!("{:.4}", timing_yield(&tuned.paths, d)),
        ]);
    }
    s.push_str(&table(
        &["deadline (ns)", "baseline yield", "tuned yield"],
        &rows,
    ));
    let _ = writeln!(
        s,
        "\ndeadline for 99% yield:   baseline {} ns, tuned {} ns ({})",
        f3(d99_base),
        f3(d99_tuned),
        pct(100.0 * (d99_tuned / d99_base - 1.0)),
    );
    let d999_base = deadline_at_yield(&baseline.paths, 0.999, 1e-4).expect("valid yield query");
    let d999_tuned = deadline_at_yield(&tuned.paths, 0.999, 1e-4).expect("valid yield query");
    let _ = writeln!(
        s,
        "deadline for 99.9% yield: baseline {} ns, tuned {} ns ({})",
        f3(d999_base),
        f3(d999_tuned),
        pct(100.0 * (d999_tuned / d999_base - 1.0)),
    );
    s.push_str(
        "\nExpected shape: the tuned design reaches any yield target at a\n\
         shorter deadline — the variability cut converts into clock speed.\n",
    );
    s
}

/// Ablation E — windowed restriction vs the related-work baseline of
/// whole-cell exclusion, at matched sigma budgets.
///
/// The paper's premise is that confining a cell's LUT "becomes finer
/// grained" than removing the cell. This experiment quantifies that: at the
/// same sigma budget, the windowed method and the exclusion method are both
/// synthesized and compared on sigma reduction and area cost.
pub fn abl_exclusion(ctx: &Ctx) -> String {
    use varitune_core::exclusion::{apply_exclusion, tune_by_exclusion};
    use varitune_sta::paths::worst_paths;
    use varitune_synth::{synthesize, LibraryConstraints};
    let period = ctx.periods.medium;
    let baseline = ctx.baseline(period);
    let mut rows = Vec::new();
    for ceiling in [0.04, 0.03, 0.02, 0.01] {
        // Windowed (the paper's method).
        let windowed = ctx.tuned_run(
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(ceiling),
            period,
        );
        let wc = varitune_core::Comparison::between(&baseline, &windowed.1);
        // Exclusion (related-work baseline) with the same budget.
        let ex = tune_by_exclusion(&ctx.flow.stat, ceiling);
        let filtered = apply_exclusion(&ctx.flow.stat.mean, &ex);
        let synth = synthesize(
            &ctx.flow.netlist,
            &filtered,
            &LibraryConstraints::unconstrained(),
            &ctx.synth_config(period),
        )
        .expect("exclusion synthesis");
        let (_, design_t) = worst_paths(
            &synth.design,
            &ctx.flow.stat.mean,
            &ctx.flow.stat,
            &synth.report,
            ctx.flow.config.rho,
        )
        .expect("exclusion paths");
        let ex_sigma_red = 100.0 * (1.0 - design_t.sigma / baseline.design.sigma);
        let ex_area_inc = 100.0 * (synth.area / baseline.area() - 1.0);
        rows.push(vec![
            format!("{ceiling}"),
            pct(-wc.sigma_reduction_pct()),
            pct(wc.area_increase_pct()),
            format!("{}", ex.excluded.len()),
            pct(-ex_sigma_red),
            pct(ex_area_inc),
        ]);
    }
    let mut s = format!(
        "Ablation E — windowed LUT restriction vs whole-cell exclusion\n\
         (matched sigma budgets, @ {period:.2} ns; exclusion is the\n\
         related-work style of library tuning the paper improves on)\n"
    );
    s.push_str(&table(
        &[
            "budget",
            "window sigma",
            "window area",
            "cells dropped",
            "excl. sigma",
            "excl. area",
        ],
        &rows,
    ));
    s.push_str(
        "\nExpected shape: at matched budgets the windowed method reaches a\n\
         deeper sigma cut, because exclusion cannot say `use this cell, but\n\
         only in its quiet region'.\n",
    );
    s
}

/// Ablation F — power cost of the tuning (the §II/§III power extension,
/// consumer side): activity-based power of the baseline vs the tuned
/// design.
pub fn abl_power(ctx: &Ctx) -> String {
    use varitune_netlist::random_activity;
    use varitune_sta::{estimate_power_with_activity, PowerConfig};
    let period = ctx.periods.high;
    let baseline = ctx.baseline(period);
    let tuned = best_ceiling_run(ctx, period);
    let cfg = PowerConfig::with_clock_period(period);
    let mut rows = Vec::new();
    let ceiling = TuningMethod::SigmaCeiling.to_string();
    for (label, run) in [("baseline", &baseline), (ceiling.as_str(), &tuned)] {
        // Activity measured by simulating the mapped netlist (buffers
        // included) with random vectors.
        let activity = random_activity(&run.synthesis.design.netlist, 256, ctx.flow.config.seed)
            .expect("valid mapped netlist");
        let p = estimate_power_with_activity(
            &run.synthesis.design,
            &ctx.flow.stat.mean,
            &run.synthesis.report,
            &cfg,
            &activity.per_net,
        )
        .expect("power estimate");
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", p.internal),
            format!("{:.3}", p.switching),
            format!("{:.3}", p.leakage),
            format!("{:.3}", p.total()),
        ]);
    }
    let base_total: f64 = rows[0][4].parse().expect("formatted above");
    let tuned_total: f64 = rows[1][4].parse().expect("formatted above");
    let mut s = format!(
        "Ablation F — average power @ {period:.2} ns (activity simulated over 256 random cycles)\n"
    );
    s.push_str(&table(
        &[
            "design",
            "internal mW",
            "switching mW",
            "leakage mW",
            "total mW",
        ],
        &rows,
    ));
    let _ = writeln!(
        s,
        "\npower cost of the sigma tuning: {}",
        pct(100.0 * (tuned_total / base_total - 1.0))
    );
    s.push_str(
        "Expected shape: tuning costs power in rough proportion to its area\n\
         cost (bigger drives, extra buffers) — the price of robustness the\n\
         paper trades against sigma.\n",
    );
    s
}

/// Ablation G — generality: the same tuned library applied to a completely
/// different design (a transposed FIR filter, arithmetic-dominated with
/// uniform path depths, versus the control-heavy microcontroller).
pub fn abl_fir(ctx: &Ctx) -> String {
    use varitune_core::{tune, Comparison};
    use varitune_netlist::{generate_fir, FirConfig};
    use varitune_sta::paths::worst_paths;
    use varitune_synth::{find_min_period, synthesize, LibraryConstraints};

    let fir_cfg = if ctx.scale.label == "paper" {
        FirConfig::paper_scale()
    } else {
        FirConfig::small_for_tests()
    };
    let fir = generate_fir(&fir_cfg);
    let (min_p, _) = find_min_period(
        &fir,
        &ctx.flow.stat.mean,
        &LibraryConstraints::unconstrained(),
        0.0,
        60.0,
        0.2,
    )
    .expect("FIR min-period search");
    // Synthesize at the FIR's own high-performance point so sizing is
    // actually stressed (a relaxed FIR barely exercises the windows: its
    // fanout-1 accumulator nets already sit in the quiet LUT corner).
    let period = min_p * 1.02;

    let run_with = |constraints: &LibraryConstraints| {
        let synth = synthesize(
            &fir,
            &ctx.flow.stat.mean,
            constraints,
            &ctx.synth_config(period),
        )
        .expect("FIR synthesis");
        let (paths, design_t) = worst_paths(
            &synth.design,
            &ctx.flow.stat.mean,
            &ctx.flow.stat,
            &synth.report,
            ctx.flow.config.rho,
        )
        .expect("FIR paths");
        drop(paths);
        (synth, design_t)
    };

    let (base_synth, base_t) = run_with(&LibraryConstraints::unconstrained());
    let mut s = format!(
        "Ablation G — generality on a FIR filter ({} gates) @ {period:.2} ns\n",
        fir.gates.len()
    );
    let mut rows = vec![vec![
        "baseline".to_string(),
        "-".into(),
        f3(base_t.sigma),
        format!("{:.0}", base_synth.area),
        "-".into(),
        "-".into(),
    ]];
    for ceiling in [0.03, 0.02] {
        let tuned = tune(
            &ctx.flow.stat,
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(ceiling),
        );
        let (synth, design_t) = run_with(&tuned.constraints);
        let cmp = Comparison {
            baseline_sigma: base_t.sigma,
            tuned_sigma: design_t.sigma,
            baseline_area: base_synth.area,
            tuned_area: synth.area,
        };
        rows.push(vec![
            TuningMethod::SigmaCeiling.to_string(),
            format!("{ceiling}"),
            f3(design_t.sigma),
            format!("{:.0}", synth.area),
            pct(-cmp.sigma_reduction_pct()),
            pct(cmp.area_increase_pct()),
        ]);
    }
    s.push_str(&table(
        &[
            "design",
            "ceiling",
            "sigma (ns)",
            "area (um^2)",
            "sigma delta",
            "area delta",
        ],
        &rows,
    ));
    s.push_str(
        "\nExpected shape: the sigma reduction carries over to the\n\
         arithmetic-dominated design — the method tunes the library, not one\n\
         netlist.\n",
    );
    s
}

// ---------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------

fn delay_lut(ctx: &Ctx, cell: &str, mean: bool) -> Lut {
    try_delay_lut(ctx, cell, mean).unwrap_or_else(|| panic!("cell {cell} present in library"))
}

fn try_delay_lut(ctx: &Ctx, cell: &str, mean: bool) -> Option<Lut> {
    let lib = if mean {
        &ctx.flow.stat.mean
    } else {
        &ctx.flow.stat.sigma
    };
    let pin = lib.cell(cell)?.output_pins().next()?;
    TableKind::CellRise.of(pin.timing.first()?).cloned()
}

/// Mean absolute slope of a LUT over both directions — the "flatness" shown
/// in the Fig. 4/5 surfaces.
fn mean_gradient(lut: &Lut) -> f64 {
    let slew = varitune_core::slope::slew_slope_table(lut);
    let load = varitune_core::slope::load_slope_table(lut);
    let sum: f64 = slew
        .values
        .iter()
        .chain(load.values.iter())
        .flatten()
        .map(|v| v.abs())
        .sum();
    let n = 2 * lut.rows() * lut.cols();
    sum / n as f64
}

/// The tuned run used in Figs. 12–14: the best sigma-ceiling candidate at
/// `period` (falling back to ceiling 0.02 when nothing beats the area cap).
fn best_ceiling_run(ctx: &Ctx, period: f64) -> std::rc::Rc<varitune_core::FlowRun> {
    let params = ctx
        .best_under_cap(TuningMethod::SigmaCeiling, period, 10.0)
        .map(|(p, _, _)| p)
        .unwrap_or_else(|| TuningParams::with_sigma_ceiling(0.02));
    let run = ctx.tuned_run(TuningMethod::SigmaCeiling, params, period);
    std::rc::Rc::new(run.1.clone())
}

/// Extracts a short, a medium and a long worst path from the baseline at
/// the high-performance period and converts them to MC path models.
fn extracted_paths(ctx: &Ctx) -> (Vec<String>, Vec<Vec<PathCell>>) {
    let baseline = ctx.baseline(ctx.periods.high);
    let mut paths: Vec<&PathTiming> = baseline.paths.iter().filter(|p| p.depth() >= 2).collect();
    paths.sort_by_key(|p| p.depth());
    assert!(!paths.is_empty(), "design has at least one multi-cell path");
    let short = paths[0];
    let long = paths[paths.len() - 1];
    let mid_target = (short.depth() + long.depth()) / 2;
    let medium = paths
        .iter()
        .min_by_key(|p| p.depth().abs_diff(mid_target))
        .expect("non-empty");
    let stat = &ctx.flow.stat;
    let convert = |p: &PathTiming| -> Vec<PathCell> {
        p.cells
            .iter()
            .map(|c| {
                let (m, s) = stat
                    .delay_stat(&c.cell, &c.out_pin, c.slew, c.load)
                    .expect("path cells resolve in the statistical library");
                PathCell::new(m, if m > 0.0 { s / m } else { 0.0 })
            })
            .collect()
    };
    (
        vec![
            format!("short (depth {})", short.depth()),
            format!("medium (depth {})", medium.depth()),
            format!("long (depth {})", long.depth()),
        ],
        vec![convert(short), convert(medium), convert(long)],
    )
}

/// Every experiment id the harness knows, in reporting order. The `abl-*`
/// entries are this reproduction's extensions (sample-depth convergence,
/// ρ sensitivity, corner portability).
pub const ALL_IDS: [&str; 26] = [
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "tab1",
    "tab2",
    "fig9",
    "fig10",
    "tab3",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "abl-samples",
    "abl-rho",
    "abl-corners",
    "abl-yield",
    "abl-exclusion",
    "abl-power",
    "abl-fir",
];

/// Runs one experiment by id.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates first).
pub fn run_experiment(ctx: &Ctx, id: &str) -> String {
    match id {
        "fig1" => fig1(ctx),
        "fig2" => fig2(ctx),
        "fig3" => fig3(ctx),
        "fig4" => fig4(ctx),
        "fig5" => fig5(ctx),
        "fig6" => fig6(ctx),
        "fig7" => fig7(ctx),
        "fig8" => fig8(ctx),
        "tab1" => tab1(ctx),
        "tab2" => tab2(ctx),
        "fig9" => fig9(ctx),
        "fig10" => fig10(ctx),
        "tab3" => tab3(ctx),
        "fig11" => fig11(ctx),
        "fig12" => fig12(ctx),
        "fig13" => fig13(ctx),
        "fig14" => fig14(ctx),
        "fig15" => fig15(ctx),
        "fig16" => fig16(ctx),
        "abl-samples" => abl_samples(ctx),
        "abl-rho" => abl_rho(ctx),
        "abl-corners" => abl_corners(ctx),
        "abl-yield" => abl_yield(ctx),
        "abl-exclusion" => abl_exclusion(ctx),
        "abl-power" => abl_power(ctx),
        "abl-fir" => abl_fir(ctx),
        other => panic!("unknown experiment id `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    /// One shared small context for every experiment smoke test (building
    /// it is the expensive part).
    fn ctx() -> &'static Ctx {
        use std::sync::OnceLock;
        // Ctx contains RefCell, so it is not Sync; tests in this module run
        // on one thread per test but share via a leak-once pattern guarded
        // by a mutex-free OnceLock of a raw pointer is unsound. Instead,
        // build a fresh context lazily per process via thread_local.
        thread_local! {
            static CTX: &'static Ctx = Box::leak(Box::new(Ctx::new(Scale::small())));
        }
        static INIT: OnceLock<()> = OnceLock::new();
        let _ = INIT.get_or_init(|| ());
        CTX.with(|c| *c)
    }

    #[test]
    fn cheap_experiments_render() {
        let c = ctx();
        for id in [
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "tab1", "tab2",
        ] {
            let out = run_experiment(c, id);
            assert!(out.len() > 80, "{id} output too short:\n{out}");
        }
    }

    #[test]
    fn fig1_shows_equal_variability() {
        let out = fig1(ctx());
        assert!(out.contains("0.020"));
    }

    #[test]
    fn fig15_16_run_on_extracted_paths() {
        let c = ctx();
        let out15 = fig15(c);
        assert!(out15.contains("typical"));
        assert!(out15.contains("slow"));
        let out16 = fig16(c);
        assert!(out16.contains("local share"));
    }

    #[test]
    fn fig11_reports_all_ceilings() {
        let out = fig11(ctx());
        for ceiling in ["0.04", "0.03", "0.02", "0.01"] {
            assert!(out.contains(ceiling), "{out}");
        }
    }

    #[test]
    fn all_ids_are_unique_and_covered() {
        let set: std::collections::BTreeSet<&str> = ALL_IDS.into_iter().collect();
        assert_eq!(set.len(), ALL_IDS.len());
    }

    #[test]
    fn ablation_samples_converges() {
        let out = abl_samples(ctx());
        assert!(out.contains("N libraries"));
        // The N=100 row is the reference, so its error is +0.0%.
        assert!(out.contains("+0.0%"), "{out}");
    }

    #[test]
    fn ablation_rho_scales_sigma_monotonically() {
        let out = abl_rho(ctx());
        assert!(
            out.contains("1.00x"),
            "rho=0 row is the unit reference:\n{out}"
        );
        assert!(out.contains("rho"));
    }

    #[test]
    fn ablation_corners_reports_all_three_libraries() {
        let out = abl_corners(ctx());
        for lib in ["FF1P1V25C", "TT1P1V25C", "SS1P1V25C"] {
            assert!(out.contains(lib), "{out}");
        }
    }
}
