//! Shared `--trace` plumbing for the bench binaries.
//!
//! Every binary accepts `--trace PATH`: the whole measurement body runs
//! under [`varitune_trace::capture`] and the resulting [`FlowTrace`] is
//! written to `PATH` as deterministic JSON. Without the `wall-clock`
//! feature the file is byte-identical across reruns and thread counts,
//! which CI exploits as a determinism gate.
//!
//! [`FlowTrace`]: varitune_trace::FlowTrace

use std::process::ExitCode;

/// Runs `f`, capturing a flow trace around it when `path` is given.
///
/// With `path = None` this is a plain call — tracing stays disabled and
/// the binary behaves exactly as before the observability layer existed.
/// With a path, the trace is serialized after `f` returns; an unwritable
/// path turns a successful run into a failure, since the caller asked for
/// an artefact that could not be produced.
pub fn run_traced(path: Option<&str>, f: impl FnOnce() -> ExitCode) -> ExitCode {
    match path {
        None => f(),
        Some(path) => {
            let (code, trace) = varitune_trace::capture(f);
            if let Err(e) = std::fs::write(path, trace.to_json()) {
                eprintln!("cannot write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote trace {path}");
            code
        }
    }
}

/// Documented stage spans each binary's `--trace` output must contain.
///
/// These are the schema contract pinned by `tests/trace_schema.rs`:
/// renaming a span in a binary (or in the flow) without updating the
/// matching constant here fails that test.
pub mod stages {
    /// `experiments` drives [`varitune_core::flow::Flow`], so its trace
    /// carries the baseline flow stages (context preparation alone runs
    /// prepare, characterize, generate and several baseline syntheses).
    pub const EXPERIMENTS: &[&str] = &[
        "flow.prepare",
        "flow.characterize",
        "flow.generate_design",
        "flow.run",
        "flow.synthesize",
        "flow.sta",
    ];
    /// `tune_harness` times the prepare components and the Table-2 sweep.
    pub const TUNE_HARNESS: &[&str] = &[
        "tune_harness.prepare",
        "libchar.mc_characterize",
        "tune_harness.tune_sweep",
    ];
    /// `mc_harness` times the two parallel Monte-Carlo kernels.
    pub const MC_HARNESS: &[&str] = &["mc_harness.characterization", "mc_harness.path_mc"];
    /// `sta_harness` times full analysis, incremental re-timing and the
    /// thread-scaling sweep.
    pub const STA_HARNESS: &[&str] = &[
        "sta_harness.build",
        "sta_harness.incremental",
        "sta_harness.thread_scaling",
    ];
    /// `ssta_harness` characterizes + builds, runs the statistical
    /// propagation sweep, and samples the Monte-Carlo oracle; the SSTA
    /// engine's own spans (`sta.ssta.*`) ride along.
    pub const SSTA_HARNESS: &[&str] = &[
        "ssta_harness.build",
        "ssta_harness.analyze",
        "ssta_harness.mc",
        "sta.ssta.build",
        "sta.ssta.analyze",
        "sta.ssta.mc",
    ];
    /// `fault_harness` runs all corruption scenarios under one span.
    pub const FAULT_HARNESS: &[&str] = &["fault_harness.scenarios"];
    /// `serve_harness` wraps each server run (one worker-count sweep
    /// entry) in a span; the jobs themselves trace into the *server's*
    /// per-job recorders, not the harness capture.
    pub const SERVE_HARNESS: &[&str] = &["serve_harness.run"];
    /// `optimize_harness` prepares the golden small-scale flow, runs the
    /// Table-2 grid through the `Optimizer` trait and then the
    /// evolutionary Pareto search, whose own spans
    /// (`varitune_core::OPTIMIZER_SPANS`) ride along.
    pub const OPTIMIZE_HARNESS: &[&str] = &[
        "optimize_harness.prepare",
        "optimize_harness.paper_grid",
        "optimize_harness.search",
        "optimize.search",
        "optimize.generation",
        "optimize.evaluate",
        "optimize.front",
    ];
    /// `parse_harness` generates its libraries, benches classic vs
    /// zero-copy ingestion, and differentially checks them over the
    /// fault corpora.
    pub const PARSE_HARNESS: &[&str] = &[
        "parse_harness.generate",
        "parse_harness.bench",
        "parse_harness.differential",
    ];
}
