//! Experiment harness regenerating every table and figure of the paper.
//!
//! The [`Ctx`] prepares the shared inputs (library, statistical library,
//! design, the Table 1 clock periods) once; each `fig*`/`tab*` function in
//! [`experiments`] reproduces one artefact and returns its report as text.
//! The `experiments` binary drives them from the command line; the Criterion
//! benches in `benches/` measure the underlying kernels.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod corrupt;
pub mod experiments;
pub mod text;
pub mod trace;

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use varitune_core::flow::{Comparison, Flow, FlowConfig, FlowRun};
use varitune_core::{TunedLibrary, TuningMethod, TuningParams};
use varitune_synth::{find_min_period, LibraryConstraints, SynthConfig};

/// Experiment scale: the paper-faithful sizes or a fast reduced setup.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Human-readable label for report headers.
    pub label: String,
    /// Flow configuration (library, design, MC depth).
    pub flow: FlowConfig,
    /// Fig. 9 lists cells used more often than this.
    pub usage_threshold: usize,
    /// Monte-Carlo samples for the Fig. 15/16 path simulations.
    pub mc_samples: usize,
}

impl Scale {
    /// The paper-faithful scale: 304-cell library, 50 MC libraries,
    /// ~20 k-gate design, N = 200 path MC.
    pub fn paper() -> Self {
        Self {
            label: "paper".to_string(),
            flow: FlowConfig::paper_scale(),
            usage_threshold: 100,
            mc_samples: 200,
        }
    }

    /// Reduced scale for quick runs and tests (~1 k gates, 20 MC
    /// libraries).
    pub fn small() -> Self {
        Self {
            label: "small".to_string(),
            flow: FlowConfig::small_for_tests(),
            usage_threshold: 10,
            mc_samples: 200,
        }
    }
}

/// The Table 1 clock periods, derived from the design instead of copied
/// from the paper: `high` is the minimum achievable period, `check` sits
/// just above it, `medium` relaxes ~1.7×, `low` ~4×.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Periods {
    /// Minimum achievable clock period (the paper's 2.41 ns).
    pub high: f64,
    /// Close-to-maximum check (the paper's 2.5 ns).
    pub check: f64,
    /// Relaxed timing (the paper's 4 ns).
    pub medium: f64,
    /// Low-performance constraint (the paper's 10 ns).
    pub low: f64,
}

impl Periods {
    /// The four periods in reporting order.
    pub fn all(&self) -> [(&'static str, f64); 4] {
        [
            ("high", self.high),
            ("check", self.check),
            ("medium", self.medium),
            ("low", self.low),
        ]
    }
}

/// Shared experiment context: prepared flow, derived periods, and a
/// memoized baseline run per period.
pub struct Ctx {
    /// Scale the context was built at.
    pub scale: Scale,
    /// Prepared inputs (libraries + design).
    pub flow: Flow,
    /// Derived Table 1 periods.
    pub periods: Periods,
    /// Clock guard band applied by every synthesis (the paper's 300 ps,
    /// scaled to this design's speed).
    pub uncertainty: f64,
    baselines: RefCell<HashMap<u64, Rc<FlowRun>>>,
    tuned: RefCell<HashMap<TunedKey, Rc<(TunedLibrary, FlowRun)>>>,
}

/// Memo key for tuned runs: (method discriminant, varied-value bits, period
/// bits).
type TunedKey = (u8, u64, u64);

impl Ctx {
    /// Prepares libraries, design and the Table 1 periods.
    ///
    /// # Panics
    ///
    /// Panics if flow preparation or the minimum-period search fails —
    /// these run on generator-produced inputs, so a failure is a bug worth
    /// crashing the harness over.
    pub fn new(scale: Scale) -> Self {
        // Invariant (documented under `# Panics`): the scales feed
        // generator-produced inputs, so preparation and the period search
        // cannot fail without a harness bug.
        #[allow(clippy::expect_used)]
        let flow = Flow::prepare(scale.flow.clone()).expect("flow preparation");
        // First pass: minimum period without a guard band, to size the
        // guard (the paper uses 300 ps on a 2.41 ns clock, ~12 %).
        #[allow(clippy::expect_used)] // same invariant as above
        let (p0, _) = find_min_period(
            &flow.netlist,
            &flow.stat.mean,
            &LibraryConstraints::unconstrained(),
            0.0,
            30.0,
            0.1,
        )
        .expect("minimum-period search");
        let uncertainty = round2(GUARD_FRACTION * p0);
        // Second pass: minimum period *with* the guard band in place, like
        // the paper's flow (the guard is part of synthesis).
        let min_period = bisect_min_period(&flow, uncertainty, 0.0, 30.0 + uncertainty, 0.05);
        let periods = Periods {
            high: round2(min_period),
            check: round2(min_period * 1.04),
            medium: round2(min_period * 1.66),
            low: round2(min_period * 4.15),
        };
        Self {
            scale,
            flow,
            periods,
            uncertainty,
            baselines: RefCell::new(HashMap::new()),
            tuned: RefCell::new(HashMap::new()),
        }
    }

    /// Synthesis configuration used by every experiment at `period`,
    /// including the design-scaled guard band.
    pub fn synth_config(&self, period: f64) -> SynthConfig {
        let mut cfg = SynthConfig::with_clock_period(period);
        cfg.sta.clock_uncertainty = self.uncertainty;
        cfg
    }

    /// The baseline (unconstrained) run at `period`, memoized.
    ///
    /// # Panics
    ///
    /// Panics if synthesis fails (a harness bug, not an input condition).
    pub fn baseline(&self, period: f64) -> Rc<FlowRun> {
        let key = period.to_bits();
        if let Some(r) = self.baselines.borrow().get(&key) {
            return Rc::clone(r);
        }
        // Invariant (`# Panics`): synthesis over generator-produced inputs
        // fails only on a harness bug.
        #[allow(clippy::expect_used)]
        let run = Rc::new(
            self.flow
                .run_baseline(&self.synth_config(period))
                .expect("baseline synthesis"),
        );
        self.baselines.borrow_mut().insert(key, Rc::clone(&run));
        run
    }

    /// A tuned run at `period`, memoized on `(method, varied value,
    /// period)`.
    ///
    /// # Panics
    ///
    /// Panics if tuning or synthesis fails (harness bug).
    pub fn tuned_run(
        &self,
        method: TuningMethod,
        params: TuningParams,
        period: f64,
    ) -> Rc<(TunedLibrary, FlowRun)> {
        let key = (
            method as u8,
            params.varied_value(method).to_bits(),
            period.to_bits(),
        );
        if let Some(r) = self.tuned.borrow().get(&key) {
            return Rc::clone(r);
        }
        // Invariant (`# Panics`): as for `baseline`.
        #[allow(clippy::expect_used)]
        let run = Rc::new(
            self.flow
                .run_tuned(method, params, &self.synth_config(period))
                .expect("tuned synthesis"),
        );
        self.tuned.borrow_mut().insert(key, Rc::clone(&run));
        run
    }

    /// The Fig. 10 / Table 3 selection: sweep the Table 2 parameters of
    /// `method` at `period`, return the candidate with the highest sigma
    /// reduction whose area increase stays below `area_cap_pct`.
    #[allow(clippy::type_complexity)]
    pub fn best_under_cap(
        &self,
        method: TuningMethod,
        period: f64,
        area_cap_pct: f64,
    ) -> Option<(TuningParams, Rc<(TunedLibrary, FlowRun)>, Comparison)> {
        let baseline = self.baseline(period);
        let mut best: Option<(TuningParams, Rc<(TunedLibrary, FlowRun)>, Comparison)> = None;
        for params in TuningParams::table2_sweep(method) {
            let run = self.tuned_run(method, params, period);
            let cmp = Comparison::between(&baseline, &run.1);
            if cmp.area_increase_pct() > area_cap_pct {
                continue;
            }
            let better = best
                .as_ref()
                .is_none_or(|(_, _, b)| cmp.sigma_reduction_pct() > b.sigma_reduction_pct());
            if better {
                best = Some((params, run, cmp));
            }
        }
        best
    }
}

/// Guard-band fraction of the unguarded minimum period (paper: 300 ps on
/// 2.41 ns ≈ 12 %).
const GUARD_FRACTION: f64 = 0.12;

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Minimum achievable period under a fixed guard band, by bisection.
fn bisect_min_period(flow: &Flow, uncertainty: f64, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
    let meets = |period: f64| {
        let mut cfg = SynthConfig::with_clock_period(period);
        cfg.sta.clock_uncertainty = uncertainty;
        // Invariant: the bisection probes generator-produced inputs.
        #[allow(clippy::expect_used)]
        flow.run_baseline(&cfg)
            .expect("baseline synthesis")
            .synthesis
            .met_timing
    };
    assert!(meets(hi), "search ceiling {hi} ns must be achievable");
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if meets(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_context_prepares_and_orders_periods() {
        let ctx = Ctx::new(Scale::small());
        let p = ctx.periods;
        assert!(p.high > 0.0);
        assert!(p.high <= p.check && p.check < p.medium && p.medium < p.low);
        // The minimum period must be achievable.
        let run = ctx.baseline(p.low);
        assert!(run.synthesis.met_timing);
    }

    #[test]
    fn baselines_are_memoized() {
        let ctx = Ctx::new(Scale::small());
        let a = ctx.baseline(ctx.periods.low);
        let b = ctx.baseline(ctx.periods.low);
        assert!(Rc::ptr_eq(&a, &b));
    }
}
