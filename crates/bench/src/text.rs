//! Small plain-text table/plot helpers for the experiment reports.

/// Renders rows as a fixed-width table with a header and a rule.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One-line horizontal bar for ASCII bar charts.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Formats a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float as a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a     "));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(7.04), "+7.0%");
        assert_eq!(pct(-36.95), "-37.0%");
    }
}
