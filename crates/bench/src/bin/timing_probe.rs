//! Diagnostic: synthesize the paper-scale MCU at a given clock period and
//! report slack, critical-path shape and depth statistics.
//!
//! ```text
//! timing_probe [period_ns] [--small]
//! ```

use varitune_core::flow::{Flow, FlowConfig};
use varitune_sta::PathTiming;
use varitune_synth::SynthConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let period: f64 = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(20.0);

    let cfg = if small {
        FlowConfig::small_for_tests()
    } else {
        FlowConfig::paper_scale()
    };
    let flow = Flow::prepare(cfg)?;
    eprintln!(
        "design {} gates; synthesizing @ {period} ns",
        flow.netlist.gates.len()
    );
    let run = flow.run_baseline(&SynthConfig::with_clock_period(period))?;
    let r = &run.synthesis.report;
    println!(
        "met={} worst_slack={:.3} iterations={} buffers={} area={:.0}",
        run.synthesis.met_timing,
        r.worst_slack(),
        run.synthesis.iterations,
        run.synthesis.buffers_inserted,
        run.synthesis.area,
    );
    let mut paths: Vec<&PathTiming> = run.paths.iter().collect();
    paths.sort_by(|a, b| b.arrival.total_cmp(&a.arrival));
    println!("endpoints: {}", run.paths.len());
    let maxd = paths.iter().map(|p| p.depth()).max().unwrap_or(0);
    println!("max path depth: {maxd}");
    for p in paths.iter().take(3) {
        println!(
            "  arrival {:.3} depth {:>3} endpoint {}",
            p.arrival,
            p.depth(),
            p.endpoint
        );
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for c in &p.cells {
            *counts.entry(c.cell.as_str()).or_default() += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        let summary: Vec<String> = v.iter().take(6).map(|(c, n)| format!("{c} x{n}")).collect();
        println!("    cells: {}", summary.join(", "));
        // Slowest three cells on the path.
        let mut cells: Vec<_> = p.cells.iter().collect();
        cells.sort_by(|a, b| b.delay.total_cmp(&a.delay));
        for c in cells.iter().take(3) {
            println!(
                "    slow: {} delay {:.3} slew {:.3} load {:.4}",
                c.cell, c.delay, c.slew, c.load
            );
        }
    }
    Ok(())
}
