//! Offline tuning micro-harness: wall time of the paper's §IV+§VI front end
//! — `Flow::prepare` (nominal library, Monte-Carlo libraries, statistical
//! merge, design) plus the full Table-2 `tune` sweep — with a component
//! breakdown.
//!
//! ```text
//! tune_harness [--smoke] [--repeat N] [--out PATH] [--before PREP_MS,TUNE_MS]
//!              [--trace PATH]
//! ```
//!
//! The harness times the exact calls `Flow::prepare` makes (so the sum is
//! the prepare cost) and then every `tune()` of the Table-2 parameter grid
//! (5 methods × 4 parameter values). Tuning results are checked for
//! determinism across repeats. `--before` embeds a previously recorded
//! (prepare, tune) measurement so the emitted JSON carries the
//! before/after comparison in one file (default `BENCH_tune.json`).
//! `--trace` additionally writes a `varitune-trace` flow trace, which is
//! byte-identical across reruns in default builds.

use std::process::ExitCode;
use std::time::Instant;

use varitune_bench::trace::run_traced;
use varitune_core::flow::FlowConfig;
use varitune_core::{tune, TuningMethod, TuningParams};
use varitune_libchar::{generate_nominal, StatLibrary};
use varitune_netlist::generate_mcu;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut repeat = 1usize;
    let mut out = "BENCH_tune.json".to_string();
    let mut before: Option<(f64, f64)> = None;
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => repeat = n,
                _ => return usage("--repeat expects a positive integer"),
            },
            "--out" => match it.next() {
                Some(p) => out = p,
                None => return usage("--out expects a path"),
            },
            "--before" => match it.next().map(|v| parse_pair(&v)) {
                Some(Some(pair)) => before = Some(pair),
                _ => return usage("--before expects PREPARE_MS,TUNE_MS"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: tune_harness [--smoke] [--repeat N] [--out PATH] \
                     [--before PREP_MS,TUNE_MS] [--trace PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    run_traced(trace.as_deref(), || run(smoke, repeat, &out, before))
}

fn run(smoke: bool, repeat: usize, out: &str, before: Option<(f64, f64)>) -> ExitCode {
    let scale = if smoke { "smoke" } else { "paper" };
    println!("tuning micro-harness (std::time::Instant, offline) — {scale} scale");

    let cfg = if smoke {
        FlowConfig::small_for_tests()
    } else {
        FlowConfig::paper_scale()
    };

    // Component timings of what Flow::prepare runs, best of `repeat`.
    let prepare_span = varitune_trace::span!("tune_harness.prepare");
    let mut nominal_ms = f64::INFINITY;
    let mut char_ms = f64::INFINITY;
    let mut mcu_ms = f64::INFINITY;
    let mut stat = None;
    for _ in 0..repeat {
        let t0 = Instant::now();
        let nominal = generate_nominal(&cfg.generate);
        nominal_ms = nominal_ms.min(ms(t0));

        // Streaming MC characterization + Welford merge in one fused pass,
        // exactly what Flow::prepare calls.
        let t0 = Instant::now();
        let s = StatLibrary::from_monte_carlo(
            &nominal,
            &cfg.generate,
            cfg.mc_libraries,
            cfg.seed,
            cfg.threads,
        );
        char_ms = char_ms.min(ms(t0));

        let t0 = Instant::now();
        let netlist = generate_mcu(&cfg.mcu);
        mcu_ms = mcu_ms.min(ms(t0));
        std::hint::black_box(&netlist);
        stat = Some(s);
    }
    let stat = stat.expect("repeat >= 1");
    drop(prepare_span);
    let prepare_ms = nominal_ms + char_ms + mcu_ms;
    println!("nominal library:       {nominal_ms:>9.1} ms");
    println!(
        "{} MC libs + merge:    {char_ms:>9.1} ms (streamed)",
        cfg.mc_libraries
    );
    println!("design generation:     {mcu_ms:>9.1} ms");
    println!("prepare total:         {prepare_ms:>9.1} ms");

    // The full Table-2 tuning grid: 5 methods x 4 parameter values, the
    // sweep behind Fig. 10 / Table 3. Deterministic across repeats.
    let grid: Vec<(TuningMethod, TuningParams)> = TuningMethod::ALL
        .iter()
        .flat_map(|&m| {
            TuningParams::table2_sweep(m)
                .into_iter()
                .map(move |p| (m, p))
        })
        .collect();
    let sweep_span = varitune_trace::span!("tune_harness.tune_sweep");
    let mut tune_ms = f64::INFINITY;
    let mut reference: Option<Vec<usize>> = None;
    for _ in 0..repeat {
        let t0 = Instant::now();
        let mut restricted: Vec<usize> = Vec::with_capacity(grid.len());
        for &(m, p) in &grid {
            let tuned = tune(&stat, m, p);
            restricted.push(tuned.restricted_pins);
            std::hint::black_box(&tuned);
        }
        tune_ms = tune_ms.min(ms(t0));
        match &reference {
            None => reference = Some(restricted),
            Some(r) => {
                if *r != restricted {
                    eprintln!("tuning is not deterministic across repeats");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    drop(sweep_span);
    let total_ms = prepare_ms + tune_ms;
    println!("tune x{} (Table 2):    {tune_ms:>9.1} ms", grid.len());
    println!("prepare + tune:        {total_ms:>9.1} ms");

    let comparison = before.map(|(p, t)| {
        let b = p + t;
        let speedup = b / total_ms;
        println!("before:                {b:>9.1} ms (prepare {p:.1} + tune {t:.1})");
        println!("speedup:               {speedup:>9.2}x");
        (p, t, speedup)
    });

    let json = render_json(
        scale,
        &cfg,
        nominal_ms,
        char_ms,
        mcu_ms,
        prepare_ms,
        grid.len(),
        tune_ms,
        total_ms,
        comparison,
    );
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &str,
    cfg: &FlowConfig,
    nominal_ms: f64,
    char_ms: f64,
    mcu_ms: f64,
    prepare_ms: f64,
    tune_calls: usize,
    tune_ms: f64,
    total_ms: f64,
    comparison: Option<(f64, f64, f64)>,
) -> String {
    let before = match comparison {
        Some((p, t, speedup)) => format!(
            ",\n  \"before\": {{\"prepare_ms\": {p:.1}, \"tune_ms\": {t:.1}, \
             \"total_ms\": {:.1}}},\n  \"speedup_vs_before\": {speedup:.2}",
            p + t
        ),
        None => String::new(),
    };
    format!(
        "{{\n  \"scale\": \"{scale}\",\n  \"mc_libraries\": {},\n  \
         \"prepare\": {{\n    \"nominal_ms\": {nominal_ms:.1},\n    \
         \"mc_characterization_ms\": {char_ms:.1},\n    \
         \"design_ms\": {mcu_ms:.1},\n    \"total_ms\": {prepare_ms:.1}\n  }},\n  \
         \"tune\": {{\n    \"calls\": {tune_calls},\n    \"total_ms\": {tune_ms:.1}\n  }},\n  \
         \"total_ms\": {total_ms:.1}{before}\n}}\n",
        cfg.mc_libraries
    )
}

fn parse_pair(s: &str) -> Option<(f64, f64)> {
    let (a, b) = s.split_once(',')?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: tune_harness [--smoke] [--repeat N] [--out PATH] [--before PREP_MS,TUNE_MS] \
         [--trace PATH]"
    );
    ExitCode::FAILURE
}
