//! Offline STA micro-harness: full analysis versus incremental dirty-cone
//! re-timing, plus thread scaling of the sharded levelized propagation at
//! paper, 10× and 40× (million-gate) scale.
//!
//! ```text
//! sta_harness [--smoke] [--scale paper|x10|x40|all] [--edits N]
//!             [--threads N,N,...] [--repeat N] [--out PATH] [--trace PATH]
//! ```
//!
//! `--scale paper` (the default) builds the paper-scale MCU through the
//! AoS `MappedDesign` pipeline and times a full `analyze`, the one-time
//! `TimingGraph` build, and a long sequence of single-gate resize re-times
//! through the incremental engine, then a full re-propagation at each
//! requested thread count. `--scale x10`/`x40` stamp the tiled SoC
//! (~260 k / >1 M gates) through the arena/SoA pipeline and time engine
//! build, sharded full propagation per thread count, and an incremental
//! edit sequence; `--scale all` runs everything. `--smoke` swaps in the
//! small test templates at every scale.
//!
//! Every incremental result is verified **bit-identical** against a fresh
//! full analysis, and all thread counts must agree bit-for-bit — these
//! checks run on every host. The ≥3× speedup-at-8-threads check only
//! arms on machines that actually have 8 hardware threads (recorded as
//! `host_hardware_threads` in the JSON); a single-core runner cannot
//! demonstrate scaling and must not fabricate it. Results land in a JSON
//! file (default `BENCH_sta.json`) with one `scale_rows` entry per scale,
//! so the perf trajectory is tracked across changes. Timings are the best
//! of `--repeat` runs.

use std::process::ExitCode;
use std::time::Instant;

use varitune_bench::trace::run_traced;
use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_liberty::Library;
use varitune_netlist::{generate_mcu, generate_soc, McuConfig, SocConfig};
use varitune_sta::{analyze, StaConfig, TimingGraph, TimingReport, WireModel};
use varitune_synth::{map_netlist, map_soa, LibraryConstraints, TargetLibrary};

const DEFAULT_THREADS: [usize; 3] = [1, 2, 8];

/// Tolerance for the smoke-profile "parallel is not slower" check: thread
/// dispatch on a tiny design may cost a little, it must not cost much.
const SMOKE_PARALLEL_TOLERANCE: f64 = 1.35;

/// One completed scale measurement, rendered into `scale_rows`.
struct ScaleRow {
    scale: String,
    gates: usize,
    nets: usize,
    build_ms: f64,
    /// Best full propagation over all measured thread counts.
    full_analyze_ms: f64,
    /// `(threads, best full re-propagation ms)` per requested count.
    thread_rows: Vec<(usize, f64)>,
    edits: usize,
    avg_retime_ms: f64,
    avg_cone: f64,
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut scale = "paper".to_string();
    let mut edits = 200usize;
    let mut repeat = 3usize;
    let mut threads: Vec<usize> = DEFAULT_THREADS.to_vec();
    let mut out = "BENCH_sta.json".to_string();
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scale" => match it.next() {
                Some(s) if ["paper", "x10", "x40", "all"].contains(&s.as_str()) => scale = s,
                _ => return usage("--scale expects paper, x10, x40 or all"),
            },
            "--edits" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => edits = n,
                _ => return usage("--edits expects a positive integer"),
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => repeat = n,
                _ => return usage("--repeat expects a positive integer"),
            },
            "--threads" => match it.next().map(parse_thread_list) {
                Some(Some(list)) if !list.is_empty() && !list.contains(&0) => threads = list,
                _ => return usage("--threads expects a comma-separated list like 1,2,8"),
            },
            "--out" => match it.next() {
                Some(p) => out = p,
                None => return usage("--out expects a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: sta_harness [--smoke] [--scale paper|x10|x40|all] [--edits N] \
                     [--threads N,N,...] [--repeat N] [--out PATH] [--trace PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    run_traced(trace.as_deref(), || {
        run(smoke, &scale, edits, repeat, &threads, &out)
    })
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn run(
    smoke: bool,
    scale: &str,
    edits: usize,
    repeat: usize,
    threads: &[usize],
    out: &str,
) -> ExitCode {
    let hw = hardware_threads();
    let profile = if smoke { "smoke" } else { "full" };
    println!(
        "STA harness (std::time::Instant, offline) — scale {scale}, {profile} profile, \
         {hw} hardware threads"
    );

    let lib = generate_nominal(&GenerateConfig::full());
    let cfg = StaConfig::with_clock_period(2.41);
    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut paper_extra: Option<(f64, f64)> = None; // (full analyze ms, speedup)

    if scale == "paper" || scale == "all" {
        match run_paper(&lib, &cfg, smoke, edits, repeat, threads) {
            Ok((row, full_ms, speedup)) => {
                paper_extra = Some((full_ms, speedup));
                rows.push(row);
            }
            Err(code) => return code,
        }
    }
    for soc_scale in ["x10", "x40"] {
        if scale != soc_scale && scale != "all" {
            continue;
        }
        let soc_cfg = if soc_scale == "x10" {
            SocConfig::x10()
        } else {
            SocConfig::x40()
        };
        let soc_cfg = if smoke { soc_cfg.smoke() } else { soc_cfg };
        match run_soc(&lib, &cfg, soc_scale, &soc_cfg, edits, repeat, threads) {
            Ok(row) => rows.push(row),
            Err(code) => return code,
        }
    }

    // Host-gated scaling assertions: bit-identity was already enforced
    // per scale; wall-clock speedup claims only arm on hardware that can
    // express them.
    for row in &rows {
        let base = row
            .thread_rows
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|&(_, ms)| ms);
        let at8 = row
            .thread_rows
            .iter()
            .find(|(t, _)| *t == 8)
            .map(|&(_, ms)| ms);
        if let (Some(base), Some(at8)) = (base, at8) {
            if hw >= 8 && !smoke {
                let speedup = base / at8;
                if speedup < 3.0 {
                    eprintln!(
                        "FAIL: {} full propagation speedup at 8 threads is {speedup:.2}x \
                         (< 3x) on a {hw}-thread host",
                        row.scale
                    );
                    return ExitCode::FAILURE;
                }
                println!("{}: 8-thread speedup {speedup:.2}x (>= 3x)", row.scale);
            } else if hw >= 2 {
                if at8 > base * SMOKE_PARALLEL_TOLERANCE {
                    eprintln!(
                        "FAIL: {} parallel propagation ({at8:.3} ms) is slower than \
                         serial ({base:.3} ms) beyond tolerance on a {hw}-thread host",
                        row.scale
                    );
                    return ExitCode::FAILURE;
                }
                println!("{}: parallel not slower than serial (ok)", row.scale);
            } else {
                println!(
                    "{}: thread-scaling assertion skipped ({hw} hardware thread)",
                    row.scale
                );
            }
        }
    }
    if !smoke {
        if let Some(x40) = rows.iter().find(|r| r.scale == "x40") {
            if x40.gates < 1_000_000 {
                eprintln!("FAIL: x40 scale is {} gates (< 1M)", x40.gates);
                return ExitCode::FAILURE;
            }
            if x40.full_analyze_ms > 5000.0 {
                eprintln!(
                    "FAIL: x40 full STA {:.1} ms exceeds the 5 s budget",
                    x40.full_analyze_ms
                );
                return ExitCode::FAILURE;
            }
            println!(
                "x40: {} gates, full STA {:.1} ms (<= 5 s)",
                x40.gates, x40.full_analyze_ms
            );
        }
    }

    let json = render_json(hw, &rows, paper_extra);
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    if let Some((_, speedup)) = paper_extra {
        if !smoke && speedup < 5.0 {
            eprintln!("FAIL: incremental speedup {speedup:.1}x is below the 5x floor");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Paper-scale MCU through the AoS pipeline: full `analyze` vs engine
/// build vs incremental re-times, then the thread-scaling sweep. Returns
/// the scale row plus `(full analyze ms, incremental speedup)`.
fn run_paper(
    lib: &Library,
    cfg: &StaConfig,
    smoke: bool,
    edits: usize,
    repeat: usize,
    threads: &[usize],
) -> Result<(ScaleRow, f64, f64), ExitCode> {
    let build_span = varitune_trace::span!("sta_harness.build");
    let mcu = if smoke {
        McuConfig::small_for_tests()
    } else {
        McuConfig::paper_scale()
    };
    let constraints = LibraryConstraints::unconstrained();
    let target = TargetLibrary::new(lib, &constraints);
    let design = match map_netlist(&generate_mcu(&mcu), &target, WireModel::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mapping failed: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let gates = design.netlist.gates.len();
    let nets = design.netlist.nets.len();
    println!("paper: {gates} gates, {nets} nets; best of {repeat}");

    // Warm-up.
    let _ = analyze(&design, lib, cfg);

    // Full analysis: validate + build + propagate, as every optimizer
    // iteration paid before the incremental engine existed.
    let mut full_ms = f64::INFINITY;
    for _ in 0..repeat {
        let t0 = Instant::now();
        let r = analyze(&design, lib, cfg).expect("full analyze");
        full_ms = full_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(r);
    }
    println!("full analyze:          {full_ms:>9.3} ms");

    // One-time engine build (includes the initial full propagation).
    let mut build_ms = f64::INFINITY;
    let mut engine = None;
    for _ in 0..repeat {
        let t0 = Instant::now();
        let e = TimingGraph::new(design.clone(), lib, cfg).expect("engine builds");
        build_ms = build_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        engine = Some(e);
    }
    let mut engine = engine.expect("repeat >= 1");
    println!("engine build:          {build_ms:>9.3} ms (once per design)");
    drop(build_span);

    // Single-gate resize re-times: the optimizer's inner-loop move. Each
    // cycle resizes one gate to a different same-family drive and
    // re-propagates only the dirty cone.
    let plan = resize_plan(lib, &engine, edits);
    if plan.is_empty() {
        eprintln!("no resizable gates found");
        return Err(ExitCode::FAILURE);
    }
    let incr_span = varitune_trace::span!("sta_harness.incremental");
    let t0 = Instant::now();
    let mut recomputed = 0usize;
    for (gi, cell) in &plan {
        engine.resize_gate(*gi, cell).expect("same-family resize");
        engine.update().expect("incremental update");
        recomputed += engine.gates_recomputed_in_last_update();
    }
    let incr_ms = t0.elapsed().as_secs_f64() * 1e3 / plan.len() as f64;
    let avg_cone = recomputed as f64 / plan.len() as f64;
    let speedup = full_ms / incr_ms;
    println!(
        "incremental re-time:   {incr_ms:>9.3} ms/edit over {} edits \
         (avg cone {avg_cone:.1} of {gates} gates) — {speedup:.1}x vs full",
        plan.len()
    );

    // Equivalence proof: the edited engine must match a fresh full
    // analysis of the edited design to the last bit.
    let full_report = analyze(engine.design(), lib, cfg).expect("full analyze of edited");
    if let Err(msg) = reports_bit_identical(&engine.report(), &full_report) {
        eprintln!("incremental result diverged from full analysis: {msg}");
        return Err(ExitCode::FAILURE);
    }
    println!("equivalence:           incremental == full analysis (bit-identical)");
    drop(incr_span);

    let thread_rows = scaling_sweep(&mut engine, "paper", repeat, threads)?;
    let best_full = thread_rows
        .iter()
        .map(|&(_, ms)| ms)
        .fold(full_ms, f64::min);
    Ok((
        ScaleRow {
            scale: "paper".into(),
            gates,
            nets,
            build_ms,
            full_analyze_ms: best_full,
            thread_rows,
            edits: plan.len(),
            avg_retime_ms: incr_ms,
            avg_cone,
        },
        full_ms,
        speedup,
    ))
}

/// Tiled-SoC scale through the arena/SoA pipeline: generator → `map_soa`
/// → `TimingGraph::new_soa`, then the sharded full-propagation sweep and
/// an incremental edit sequence, each verified bit-identical.
fn run_soc(
    lib: &Library,
    cfg: &StaConfig,
    scale: &str,
    soc_cfg: &SocConfig,
    edits: usize,
    repeat: usize,
    threads: &[usize],
) -> Result<ScaleRow, ExitCode> {
    let build_span = varitune_trace::span!("sta_harness.build");
    let t0 = Instant::now();
    let netlist = generate_soc(soc_cfg);
    let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
    let gates = netlist.gate_count();
    let nets = netlist.net_count();
    println!("{scale}: {gates} gates, {nets} nets (generated in {gen_ms:.1} ms); best of {repeat}");

    let constraints = LibraryConstraints::unconstrained();
    let target = TargetLibrary::new(lib, &constraints);
    let design = match map_soa(netlist, &target, WireModel::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mapping failed: {e}");
            return Err(ExitCode::FAILURE);
        }
    };

    // Engine build over the SoA store (includes the initial sharded full
    // propagation).
    let mut build_ms = f64::INFINITY;
    let mut engine = None;
    for _ in 0..repeat {
        let d = design.clone();
        let t0 = Instant::now();
        let e = TimingGraph::new_soa(d, lib, cfg).expect("engine builds");
        build_ms = build_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        engine = Some(e);
    }
    let mut engine = engine.expect("repeat >= 1");
    println!("engine build:          {build_ms:>9.3} ms (once per design)");
    drop(build_span);

    // Incremental resize re-times, capped: at a million gates a short
    // sequence already exercises every dirty-cone path.
    let incr_span = varitune_trace::span!("sta_harness.incremental");
    let plan = resize_plan(lib, &engine, edits.min(50));
    if plan.is_empty() {
        eprintln!("no resizable gates found");
        return Err(ExitCode::FAILURE);
    }
    let t0 = Instant::now();
    let mut recomputed = 0usize;
    for (gi, cell) in &plan {
        engine.resize_gate(*gi, cell).expect("same-family resize");
        engine.update().expect("incremental update");
        recomputed += engine.gates_recomputed_in_last_update();
    }
    let incr_ms = t0.elapsed().as_secs_f64() * 1e3 / plan.len() as f64;
    let avg_cone = recomputed as f64 / plan.len() as f64;
    println!(
        "incremental re-time:   {incr_ms:>9.3} ms/edit over {} edits \
         (avg cone {avg_cone:.1} of {gates} gates)",
        plan.len()
    );

    // Equivalence proof without materializing an AoS copy: a fresh engine
    // over the edited SoA design replays the full propagation.
    let edited = engine.soa_design().expect("soa engine").clone();
    let fresh = TimingGraph::new_soa(edited, lib, cfg).expect("fresh engine over edited design");
    if let Err(msg) = reports_bit_identical(&engine.report(), &fresh.report()) {
        eprintln!("incremental result diverged from fresh analysis: {msg}");
        return Err(ExitCode::FAILURE);
    }
    println!("equivalence:           incremental == fresh analysis (bit-identical)");
    drop(incr_span);

    let thread_rows = scaling_sweep(&mut engine, scale, repeat, threads)?;
    let full_analyze_ms = thread_rows
        .iter()
        .map(|&(_, ms)| ms)
        .fold(f64::INFINITY, f64::min);
    Ok(ScaleRow {
        scale: scale.into(),
        gates,
        nets,
        build_ms,
        full_analyze_ms,
        thread_rows,
        edits: plan.len(),
        avg_retime_ms: incr_ms,
        avg_cone,
    })
}

/// Times a full sharded re-propagation at each requested thread count and
/// enforces bit-identity across all of them.
fn scaling_sweep(
    engine: &mut TimingGraph<'_>,
    scale: &str,
    repeat: usize,
    threads: &[usize],
) -> Result<Vec<(usize, f64)>, ExitCode> {
    let scaling_span = varitune_trace::span!("sta_harness.thread_scaling");
    let mut rows: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<TimingReport> = None;
    for &t in threads {
        engine.set_threads(t);
        let mut dt = f64::INFINITY;
        for _ in 0..repeat {
            engine.invalidate_all();
            let t0 = Instant::now();
            engine.update().expect("full re-propagation");
            dt = dt.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        match &reference {
            None => reference = Some(engine.report()),
            Some(r) => {
                if let Err(msg) = reports_bit_identical(&engine.report(), r) {
                    eprintln!("{scale}: thread count {t} diverged: {msg}");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
        println!("full re-prop @ {t:>2} thr: {dt:>9.3} ms");
        rows.push((t, dt));
    }
    println!("all thread counts produced bit-identical results");
    drop(scaling_span);
    engine.set_threads(1);
    Ok(rows)
}

/// Deterministic resize schedule: gates spread across the design, each
/// toggled to another drive of its own family.
fn resize_plan(
    lib: &varitune_liberty::Library,
    engine: &TimingGraph<'_>,
    edits: usize,
) -> Vec<(usize, String)> {
    let gates = engine.gate_count();
    let mut plan = Vec::with_capacity(edits);
    let mut probe = 0usize;
    while plan.len() < edits && probe < edits * 8 {
        let gi = (probe * 9973) % gates;
        probe += 1;
        let name = engine.cell_name(gi);
        let Some((family, _)) = name.rsplit_once('_') else {
            continue;
        };
        let prefix = format!("{family}_");
        // Alternate between the two outermost drives of the family so
        // successive visits to the same gate still change the cell.
        let mut variants = lib
            .cells
            .iter()
            .filter(|c| c.name.starts_with(&prefix))
            .map(|c| c.name.as_str());
        let (first, last) = (variants.next(), variants.next_back());
        let target = match (first, last) {
            (Some(f), Some(_)) if f != name => f,
            (_, Some(l)) if l != name => l,
            _ => continue,
        };
        plan.push((gi, target.to_string()));
    }
    plan
}

fn reports_bit_identical(a: &TimingReport, b: &TimingReport) -> Result<(), String> {
    if a.nets.len() != b.nets.len() || a.endpoints.len() != b.endpoints.len() {
        return Err("shape mismatch".into());
    }
    for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
        if x.arrival.to_bits() != y.arrival.to_bits()
            || x.slew.to_bits() != y.slew.to_bits()
            || x.load.to_bits() != y.load.to_bits()
        {
            return Err(format!(
                "net {i}: ({}, {}) vs ({}, {})",
                x.arrival, x.slew, y.arrival, y.slew
            ));
        }
    }
    for (i, (x, y)) in a.endpoints.iter().zip(&b.endpoints).enumerate() {
        if x.slack().to_bits() != y.slack().to_bits() {
            return Err(format!(
                "endpoint {i}: slack {} vs {}",
                x.slack(),
                y.slack()
            ));
        }
    }
    Ok(())
}

fn render_json(hw: usize, rows: &[ScaleRow], paper_extra: Option<(f64, f64)>) -> String {
    let scale_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            let threads: Vec<String> = r
                .thread_rows
                .iter()
                .map(|(t, ms)| {
                    format!("        {{\"threads\": {t}, \"full_repropagation_ms\": {ms:.3}}}")
                })
                .collect();
            format!(
                "    {{\n      \"scale\": \"{}\",\n      \"gates\": {},\n      \"nets\": {},\n      \
                 \"engine_build_ms\": {:.3},\n      \"full_analyze_ms\": {:.3},\n      \
                 \"incremental\": {{\"edits\": {}, \"avg_retime_ms\": {:.4}, \
                 \"avg_gates_recomputed\": {:.1}}},\n      \
                 \"thread_scaling\": [\n{}\n      ],\n      \"bit_identical\": true\n    }}",
                r.scale,
                r.gates,
                r.nets,
                r.build_ms,
                r.full_analyze_ms,
                r.edits,
                r.avg_retime_ms,
                r.avg_cone,
                threads.join(",\n")
            )
        })
        .collect();
    let paper = paper_extra.map_or(String::new(), |(full_ms, speedup)| {
        format!(
            "  \"paper_full_analyze_ms\": {full_ms:.3},\n  \
             \"paper_incremental_speedup\": {speedup:.1},\n"
        )
    });
    format!(
        "{{\n  \"host_hardware_threads\": {hw},\n{paper}  \"scale_rows\": [\n{}\n  ],\n  \
         \"bit_identical\": true\n}}\n",
        scale_rows.join(",\n")
    )
}

fn parse_thread_list(s: String) -> Option<Vec<usize>> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().ok())
        .collect()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: sta_harness [--smoke] [--scale paper|x10|x40|all] [--edits N] \
         [--threads N,N,...] [--repeat N] [--out PATH] [--trace PATH]"
    );
    ExitCode::FAILURE
}
