//! Offline STA micro-harness: full analysis versus incremental dirty-cone
//! re-timing, plus thread scaling of the parallel levelized propagation.
//!
//! ```text
//! sta_harness [--smoke] [--edits N] [--threads N,N,...] [--repeat N] [--out PATH]
//!             [--trace PATH]
//! ```
//!
//! Builds the paper-scale MCU (`--smoke` uses the small test scale), times
//! a full `analyze`, the one-time `TimingGraph` build, and a long sequence
//! of single-gate resize re-times through the incremental engine, then a
//! full re-propagation at each requested thread count. Every incremental
//! result is verified **bit-identical** against a fresh full analysis, and
//! all thread counts must agree bit-for-bit. Results land in a JSON file
//! (default `BENCH_sta.json`) so the perf trajectory is tracked across
//! changes. Timings are the best of `--repeat` runs.

use std::process::ExitCode;
use std::time::Instant;

use varitune_bench::trace::run_traced;
use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_netlist::{generate_mcu, McuConfig};
use varitune_sta::{analyze, StaConfig, TimingGraph, TimingReport, WireModel};
use varitune_synth::{map_netlist, LibraryConstraints, TargetLibrary};

const DEFAULT_THREADS: [usize; 3] = [1, 2, 8];

fn main() -> ExitCode {
    let mut smoke = false;
    let mut edits = 200usize;
    let mut repeat = 3usize;
    let mut threads: Vec<usize> = DEFAULT_THREADS.to_vec();
    let mut out = "BENCH_sta.json".to_string();
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--edits" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => edits = n,
                _ => return usage("--edits expects a positive integer"),
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => repeat = n,
                _ => return usage("--repeat expects a positive integer"),
            },
            "--threads" => match it.next().map(parse_thread_list) {
                Some(Some(list)) if !list.is_empty() && !list.contains(&0) => threads = list,
                _ => return usage("--threads expects a comma-separated list like 1,2,8"),
            },
            "--out" => match it.next() {
                Some(p) => out = p,
                None => return usage("--out expects a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: sta_harness [--smoke] [--edits N] [--threads N,N,...] \
                     [--repeat N] [--out PATH] [--trace PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    run_traced(trace.as_deref(), || {
        run(smoke, edits, repeat, &threads, &out)
    })
}

fn run(smoke: bool, edits: usize, repeat: usize, threads: &[usize], out: &str) -> ExitCode {
    let scale = if smoke { "smoke" } else { "paper" };
    println!("STA micro-harness (std::time::Instant, offline) — {scale} scale");

    let build_span = varitune_trace::span!("sta_harness.build");
    let lib = generate_nominal(&GenerateConfig::full());
    let mcu = if smoke {
        McuConfig::small_for_tests()
    } else {
        McuConfig::paper_scale()
    };
    let constraints = LibraryConstraints::unconstrained();
    let target = TargetLibrary::new(&lib, &constraints);
    let design = match map_netlist(&generate_mcu(&mcu), &target, WireModel::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("mapping failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let gates = design.netlist.gates.len();
    let cfg = StaConfig::with_clock_period(2.41);
    println!(
        "design: {gates} gates, {} nets; best of {repeat}",
        design.netlist.nets.len()
    );

    // Warm-up.
    let _ = analyze(&design, &lib, &cfg);

    // Full analysis: validate + build + propagate, as every optimizer
    // iteration paid before the incremental engine existed.
    let mut full_ms = f64::INFINITY;
    for _ in 0..repeat {
        let t0 = Instant::now();
        let r = analyze(&design, &lib, &cfg).expect("full analyze");
        full_ms = full_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(r);
    }
    println!("full analyze:          {full_ms:>9.3} ms");

    // One-time engine build (includes the initial full propagation).
    let mut build_ms = f64::INFINITY;
    let mut engine = None;
    for _ in 0..repeat {
        let t0 = Instant::now();
        let e = TimingGraph::new(design.clone(), &lib, &cfg).expect("engine builds");
        build_ms = build_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        engine = Some(e);
    }
    let mut engine = engine.expect("repeat >= 1");
    println!("engine build:          {build_ms:>9.3} ms (once per design)");
    drop(build_span);

    // Single-gate resize re-times: the optimizer's inner-loop move. Each
    // cycle resizes one gate to a different same-family drive and
    // re-propagates only the dirty cone.
    let plan = resize_plan(&lib, &engine, edits);
    if plan.is_empty() {
        eprintln!("no resizable gates found");
        return ExitCode::FAILURE;
    }
    let incr_span = varitune_trace::span!("sta_harness.incremental");
    let t0 = Instant::now();
    let mut recomputed = 0usize;
    for (gi, cell) in &plan {
        engine.resize_gate(*gi, cell).expect("same-family resize");
        engine.update().expect("incremental update");
        recomputed += engine.gates_recomputed_in_last_update();
    }
    let incr_ms = t0.elapsed().as_secs_f64() * 1e3 / plan.len() as f64;
    let avg_cone = recomputed as f64 / plan.len() as f64;
    let speedup = full_ms / incr_ms;
    println!(
        "incremental re-time:   {incr_ms:>9.3} ms/edit over {} edits \
         (avg cone {avg_cone:.1} of {gates} gates) — {speedup:.1}x vs full",
        plan.len()
    );

    // Equivalence proof: the edited engine must match a fresh full
    // analysis of the edited design to the last bit.
    let full_report = analyze(engine.design(), &lib, &cfg).expect("full analyze of edited");
    if let Err(msg) = reports_bit_identical(&engine.report(), &full_report) {
        eprintln!("incremental result diverged from full analysis: {msg}");
        return ExitCode::FAILURE;
    }
    println!("equivalence:           incremental == full analysis (bit-identical)");
    drop(incr_span);

    // Thread scaling of a full levelized re-propagation.
    let scaling_span = varitune_trace::span!("sta_harness.thread_scaling");
    let mut scaling: Vec<(usize, f64)> = Vec::new();
    let mut reference: Option<TimingReport> = None;
    for &t in threads {
        engine.set_threads(t);
        let mut dt = f64::INFINITY;
        for _ in 0..repeat {
            engine.invalidate_all();
            let t0 = Instant::now();
            engine.update().expect("full re-propagation");
            dt = dt.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        match &reference {
            None => reference = Some(engine.report()),
            Some(r) => {
                if let Err(msg) = reports_bit_identical(&engine.report(), r) {
                    eprintln!("thread count {t} diverged: {msg}");
                    return ExitCode::FAILURE;
                }
            }
        }
        println!("full re-prop @ {t:>2} thr: {dt:>9.3} ms");
        scaling.push((t, dt));
    }
    println!("all thread counts produced bit-identical results");
    drop(scaling_span);

    let json = render_json(
        scale, gates, full_ms, build_ms, &plan, incr_ms, avg_cone, speedup, &scaling,
    );
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    if speedup < 5.0 {
        eprintln!("FAIL: incremental speedup {speedup:.1}x is below the 5x floor");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Deterministic resize schedule: gates spread across the design, each
/// toggled to another drive of its own family.
fn resize_plan(
    lib: &varitune_liberty::Library,
    engine: &TimingGraph<'_>,
    edits: usize,
) -> Vec<(usize, String)> {
    let gates = engine.gate_count();
    let mut plan = Vec::with_capacity(edits);
    let mut probe = 0usize;
    while plan.len() < edits && probe < edits * 8 {
        let gi = (probe * 9973) % gates;
        probe += 1;
        let name = engine.cell_name(gi);
        let Some((family, _)) = name.rsplit_once('_') else {
            continue;
        };
        let prefix = format!("{family}_");
        // Alternate between the two outermost drives of the family so
        // successive visits to the same gate still change the cell.
        let mut variants = lib
            .cells
            .iter()
            .filter(|c| c.name.starts_with(&prefix))
            .map(|c| c.name.as_str());
        let (first, last) = (variants.next(), variants.next_back());
        let target = match (first, last) {
            (Some(f), Some(_)) if f != name => f,
            (_, Some(l)) if l != name => l,
            _ => continue,
        };
        plan.push((gi, target.to_string()));
    }
    plan
}

fn reports_bit_identical(a: &TimingReport, b: &TimingReport) -> Result<(), String> {
    if a.nets.len() != b.nets.len() || a.endpoints.len() != b.endpoints.len() {
        return Err("shape mismatch".into());
    }
    for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
        if x.arrival.to_bits() != y.arrival.to_bits()
            || x.slew.to_bits() != y.slew.to_bits()
            || x.load.to_bits() != y.load.to_bits()
        {
            return Err(format!(
                "net {i}: ({}, {}) vs ({}, {})",
                x.arrival, x.slew, y.arrival, y.slew
            ));
        }
    }
    for (i, (x, y)) in a.endpoints.iter().zip(&b.endpoints).enumerate() {
        if x.slack().to_bits() != y.slack().to_bits() {
            return Err(format!(
                "endpoint {i}: slack {} vs {}",
                x.slack(),
                y.slack()
            ));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &str,
    gates: usize,
    full_ms: f64,
    build_ms: f64,
    plan: &[(usize, String)],
    incr_ms: f64,
    avg_cone: f64,
    speedup: f64,
    scaling: &[(usize, f64)],
) -> String {
    let rows: Vec<String> = scaling
        .iter()
        .map(|(t, ms)| format!("    {{\"threads\": {t}, \"full_repropagation_ms\": {ms:.3}}}"))
        .collect();
    format!(
        "{{\n  \"scale\": \"{scale}\",\n  \"design_gates\": {gates},\n  \
         \"full_analyze_ms\": {full_ms:.3},\n  \"engine_build_ms\": {build_ms:.3},\n  \
         \"incremental\": {{\n    \"edits\": {},\n    \"avg_retime_ms\": {incr_ms:.4},\n    \
         \"avg_gates_recomputed\": {avg_cone:.1},\n    \"speedup_vs_full_analyze\": {speedup:.1}\n  }},\n  \
         \"thread_scaling\": [\n{}\n  ],\n  \"bit_identical\": true\n}}\n",
        plan.len(),
        rows.join(",\n")
    )
}

fn parse_thread_list(s: String) -> Option<Vec<usize>> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().ok())
        .collect()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: sta_harness [--smoke] [--edits N] [--threads N,N,...] [--repeat N] [--out PATH] \
         [--trace PATH]"
    );
    ExitCode::FAILURE
}
