//! Load/robustness harness for the `varitune-serve` daemon.
//!
//! Drives a deterministic mixed-job stream — STA, signoff, tune, optimize,
//! strict-rejected libraries, zero-deadline bait, poison jobs — from
//! concurrent clients against a live loopback server, while an attacker
//! connection replays every [`FRAME_OPS`] corruption. Records p50/p99
//! latency, jobs/sec and the shed/retry/panic-isolated counters into
//! `BENCH_serve.json`, and asserts the robustness contract:
//!
//! * zero server deaths — every job gets a response, the server still
//!   answers `ping` after poison jobs, corrupted frames and deadlines;
//! * characterization count == distinct library hashes that completed a
//!   flow (single-flight caching, deadline-bait and rejected hashes
//!   excluded by construction);
//! * the concatenated per-job responses are byte-identical across a rerun
//!   and across worker counts 1/2/8 (full mode).
//!
//! ```text
//! serve_harness [--jobs N] [--seed S] [--smoke] [--out PATH] [--trace PATH]
//! ```

use std::panic;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Instant;

use varitune_bench::corrupt::{corrupt_frame, FRAME_OPS};
use varitune_bench::trace::run_traced;
use varitune_core::TuningMethod;
use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_serve::{fnv1a64, Client, RetryPolicy, ServeConfig, Server};
use varitune_trace::json;
use varitune_variation::rng::rng_from;

fn main() -> ExitCode {
    let mut jobs = 1000usize;
    let mut seed = 7u64;
    let mut smoke = false;
    let mut out = "BENCH_serve.json".to_string();
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => jobs = n,
                _ => return usage("--jobs expects a positive integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects a u64"),
            },
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out = p,
                None => return usage("--out expects a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve_harness [--jobs N] [--seed S] [--smoke] [--out PATH] \
                     [--trace PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if smoke {
        jobs = jobs.min(48);
    }
    run_traced(trace.as_deref(), || run(jobs, seed, smoke, &out))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("serve_harness: {msg}");
    eprintln!("usage: serve_harness [--jobs N] [--seed S] [--smoke] [--out PATH] [--trace PATH]");
    ExitCode::FAILURE
}

/// Number of concurrent client connections driving the mix.
const CLIENTS: usize = 8;
/// Distinct work libraries (each a renamed copy of the pristine text, so
/// each has its own content hash but identical timing).
const WORK_VARIANTS: usize = 6;
/// Libraries used exclusively by zero-deadline bait jobs: their
/// characterizations always cancel, so they must never count.
const BAIT_VARIANTS: usize = 2;

/// What the mix generator promises each job will answer with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Ok,
    Rejected,
    Deadline,
    Panic,
}

/// One job of the deterministic mix: everything a client needs to issue it
/// and everything the checker needs to judge the response.
struct JobSpec {
    kind: &'static str,
    /// Index into the library texts (work variants, then bait variants),
    /// or `None` for poison jobs / the rejected library.
    variant: Option<usize>,
    sick: bool,
    extra: String,
    expect: Expect,
}

/// Builds job `i` of the mix. Pure in `(seed, i)`, so every run and every
/// worker count sees the identical request stream.
fn job_spec(seed: u64, i: usize) -> JobSpec {
    let mut rng = rng_from(seed, "serve-job", i as u64);
    let roll = rng.next_u64() % 100;
    let pick = |rng: &mut varitune_variation::Xoshiro256PlusPlus, n: usize| {
        (rng.next_u64() % n as u64) as usize
    };
    if roll < 40 {
        JobSpec {
            kind: "sta",
            variant: Some(pick(&mut rng, WORK_VARIANTS)),
            sick: false,
            extra: ",\"mc_libraries\":3".to_string(),
            expect: Expect::Ok,
        }
    } else if roll < 60 {
        JobSpec {
            kind: "signoff",
            variant: Some(pick(&mut rng, WORK_VARIANTS)),
            sick: false,
            extra: ",\"mc_libraries\":3".to_string(),
            expect: Expect::Ok,
        }
    } else if roll < 78 {
        let method = TuningMethod::ALL[pick(&mut rng, TuningMethod::ALL.len())];
        let param = [10_000u64, 20_000, 40_000][pick(&mut rng, 3)];
        JobSpec {
            kind: "tune",
            variant: Some(pick(&mut rng, WORK_VARIANTS)),
            sick: false,
            extra: format!(",\"mc_libraries\":3,\"method\":\"{method}\",\"param_micro\":{param}"),
            expect: Expect::Ok,
        }
    } else if roll < 84 {
        JobSpec {
            kind: "optimize",
            variant: Some(pick(&mut rng, WORK_VARIANTS)),
            sick: false,
            extra: ",\"mc_libraries\":3,\"generations\":1,\"population\":2".to_string(),
            expect: Expect::Ok,
        }
    } else if roll < 90 {
        // Strict screening must refuse this library; repeats are answered
        // from the negative cache.
        JobSpec {
            kind: "sta",
            variant: None,
            sick: true,
            extra: ",\"mc_libraries\":3".to_string(),
            expect: Expect::Rejected,
        }
    } else if roll < 95 {
        // Zero-deadline bait on a bait-only library: the characterization
        // cancels at its first checkpoint, every time.
        JobSpec {
            kind: "sta",
            variant: Some(WORK_VARIANTS + pick(&mut rng, BAIT_VARIANTS)),
            sick: false,
            extra: ",\"mc_libraries\":3,\"deadline_ms\":0".to_string(),
            expect: Expect::Deadline,
        }
    } else {
        JobSpec {
            kind: "poison",
            variant: None,
            sick: false,
            extra: String::new(),
            expect: Expect::Panic,
        }
    }
}

fn render_request(spec: &JobSpec, id: &str, texts: &[String], sick: &str) -> String {
    if spec.kind == "poison" {
        return format!("{{\"kind\":\"poison\",\"id\":\"{id}\"}}");
    }
    let library = if spec.sick {
        sick
    } else {
        &texts[spec.variant.unwrap_or(0)]
    };
    let mut payload = String::with_capacity(library.len() + 128);
    payload.push_str(&format!(
        "{{\"kind\":\"{}\",\"id\":\"{id}\",\"library\":",
        spec.kind
    ));
    json::write_escaped(&mut payload, library);
    payload.push_str(&spec.extra);
    payload.push('}');
    payload
}

/// Per-run results the report and the cross-run assertions consume.
struct RunOutcome {
    workers: usize,
    digest: u64,
    wall_ms: u128,
    latencies_us: Vec<u64>,
    retries_total: u64,
    mismatches: usize,
    stats: varitune_serve::StatsSnapshot,
    characterizations: u64,
    alive_at_end: bool,
}

#[allow(clippy::too_many_lines)]
fn run(jobs: usize, seed: u64, smoke: bool, out: &str) -> ExitCode {
    println!(
        "serve harness: {jobs} job(s), seed {seed}, {CLIENTS} client(s){}",
        if smoke { ", smoke" } else { "" }
    );

    // Library corpus: renamed copies of one pristine full library (distinct
    // content hashes, identical timing), bait-only copies, and one
    // strict-rejected copy (non-finite pin capacitance).
    let pristine = {
        let lib = generate_nominal(&GenerateConfig::full());
        match varitune_liberty::write_library(&lib) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("serve_harness: generated library failed to serialize: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let texts: Vec<String> = (0..WORK_VARIANTS + BAIT_VARIANTS)
        .map(|v| pristine.replacen("library (", &format!("library (v{v}_"), 1))
        .collect();
    let sick = {
        let mut s = pristine.replacen("library (", "library (sick_", 1);
        let Some(at) = s.find("capacitance : ").map(|p| p + "capacitance : ".len()) else {
            eprintln!("serve_harness: pristine text has no capacitance attribute");
            return ExitCode::FAILURE;
        };
        let Some(end) = s[at..].find(';').map(|p| p + at) else {
            eprintln!("serve_harness: malformed capacitance attribute");
            return ExitCode::FAILURE;
        };
        s.replace_range(at..end, "nan");
        s
    };

    // The mix, generated once; every run replays it identically.
    let specs: Vec<JobSpec> = (0..jobs).map(|i| job_spec(seed, i)).collect();
    let expected_characterizations = {
        let mut used = std::collections::BTreeSet::new();
        for s in &specs {
            if s.expect == Expect::Ok {
                if let Some(v) = s.variant {
                    used.insert(v);
                }
            }
        }
        used.len() as u64
    };
    let poison_jobs = specs.iter().filter(|s| s.expect == Expect::Panic).count() as u64;
    let bait_jobs = specs
        .iter()
        .filter(|s| s.expect == Expect::Deadline)
        .count() as u64;
    let sick_jobs = specs
        .iter()
        .filter(|s| s.expect == Expect::Rejected)
        .count() as u64;
    let attacks = FRAME_OPS.len() * (jobs / 200 + 1);

    // The poison jobs panic inside server workers by design; silence only
    // those messages, forward everything else.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("poison job") {
            prev_hook(info);
        }
    }));

    // Worker counts to sweep: the acceptance contract is byte-identical
    // responses across 1/2/8 plus a rerun; smoke keeps CI fast.
    let worker_runs: Vec<usize> = if smoke { vec![2] } else { vec![2, 1, 8, 2] };
    let mut outcomes: Vec<RunOutcome> = Vec::new();
    for &workers in &worker_runs {
        let _span = varitune_trace::span!("serve_harness.run");
        println!("  run: {workers} worker(s), {} attack frame(s)", attacks);
        match drive_run(workers, &specs, &texts, &sick, seed, attacks) {
            Ok(o) => outcomes.push(o),
            Err(e) => {
                eprintln!("serve_harness: run with {workers} worker(s) failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // ---- Assertions --------------------------------------------------
    let mut failures = 0usize;
    for o in &outcomes {
        if !o.alive_at_end {
            failures += 1;
            eprintln!(
                "DEATH: server with {} worker(s) stopped answering",
                o.workers
            );
        }
        if o.mismatches > 0 {
            failures += 1;
            eprintln!(
                "MISMATCH: {} response(s) differed from expectation at {} worker(s)",
                o.mismatches, o.workers
            );
        }
        if o.characterizations != expected_characterizations {
            failures += 1;
            eprintln!(
                "CACHE: {} characterization(s) at {} worker(s), expected {} \
                 (distinct completed library hashes)",
                o.characterizations, o.workers, expected_characterizations
            );
        }
        if o.stats.panics_isolated != poison_jobs {
            failures += 1;
            eprintln!(
                "ISOLATION: {} panic(s) isolated at {} worker(s), expected {poison_jobs}",
                o.stats.panics_isolated, o.workers
            );
        }
        if o.stats.deadline_expired != bait_jobs {
            failures += 1;
            eprintln!(
                "DEADLINE: {} expiries at {} worker(s), expected {bait_jobs}",
                o.stats.deadline_expired, o.workers
            );
        }
        if o.stats.protocol_errors != attacks as u64 {
            failures += 1;
            eprintln!(
                "ATTACK: {} protocol error(s) at {} worker(s), expected {attacks}",
                o.stats.protocol_errors, o.workers
            );
        }
    }
    let digests_identical = outcomes.windows(2).all(|w| w[0].digest == w[1].digest);
    if !digests_identical {
        failures += 1;
        let all: Vec<String> = outcomes
            .iter()
            .map(|o| format!("{}w:{:016x}", o.workers, o.digest))
            .collect();
        eprintln!("DETERMINISM: digests differ across runs: {}", all.join(" "));
    }

    // ---- Report ------------------------------------------------------
    let measure = &outcomes[0];
    let mut lat = measure.latencies_us.clone();
    lat.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
        lat[idx.min(lat.len() - 1)]
    };
    let jobs_per_sec = if measure.wall_ms == 0 {
        0.0
    } else {
        jobs as f64 * 1000.0 / measure.wall_ms as f64
    };

    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"varitune-serve-harness/1\",\n");
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"clients\": {CLIENTS},\n"));
    s.push_str(&format!("  \"attack_frames\": {attacks},\n"));
    s.push_str(&format!("  \"poison_jobs\": {poison_jobs},\n"));
    s.push_str(&format!("  \"deadline_jobs\": {bait_jobs},\n"));
    s.push_str(&format!("  \"rejected_jobs\": {sick_jobs},\n"));
    s.push_str(&format!(
        "  \"distinct_work_hashes\": {expected_characterizations},\n"
    ));
    s.push_str(&format!("  \"p50_latency_us\": {},\n", pct(0.50)));
    s.push_str(&format!("  \"p99_latency_us\": {},\n", pct(0.99)));
    s.push_str(&format!("  \"jobs_per_sec\": {jobs_per_sec:.1},\n"));
    s.push_str(&format!(
        "  \"digests_identical_across_runs\": {digests_identical},\n"
    ));
    s.push_str(&format!("  \"zero_server_deaths\": {},\n", failures == 0));
    s.push_str("  \"runs\": [\n");
    for (k, o) in outcomes.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"digest\": \"{:016x}\", \"wall_ms\": {}, \
             \"jobs_ok\": {}, \"jobs_shed\": {}, \"retries\": {}, \
             \"panics_isolated\": {}, \"deadline_expired\": {}, \
             \"jobs_rejected\": {}, \"protocol_errors\": {}, \
             \"characterizations\": {}}}{}\n",
            o.workers,
            o.digest,
            o.wall_ms,
            o.stats.jobs_ok,
            o.stats.jobs_shed,
            o.retries_total,
            o.stats.panics_isolated,
            o.stats.deadline_expired,
            o.stats.jobs_rejected,
            o.stats.protocol_errors,
            o.characterizations,
            if k + 1 == outcomes.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(out, &s) {
        eprintln!("serve_harness: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{jobs} job(s) x {} run(s): p50 {}us p99 {}us, {jobs_per_sec:.1} jobs/s, \
         {} failure(s) -> {out}",
        outcomes.len(),
        pct(0.50),
        pct(0.99),
        failures
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Drives the whole mix (plus the frame attacks) against one fresh server
/// and returns the measured outcome.
fn drive_run(
    workers: usize,
    specs: &[JobSpec],
    texts: &[String],
    sick: &str,
    seed: u64,
    attacks: usize,
) -> Result<RunOutcome, String> {
    let server = Server::start(ServeConfig {
        workers,
        queue_depth: 4,
        allow_poison: true,
        retry_after_ms: 2,
        trace_capacity: 8,
        ..ServeConfig::for_tests()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();

    let results: Mutex<Vec<Option<(String, u64, u64)>>> = Mutex::new(vec![None; specs.len()]);
    let started = Instant::now();
    let attack_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        // Attacker: every frame-corruption operator, repeatedly, on its own
        // connections, concurrent with the real load.
        scope.spawn(|| {
            use std::io::{Read as _, Write as _};
            for a in 0..attacks {
                let op = FRAME_OPS[a % FRAME_OPS.len()];
                let mut rng = rng_from(seed, "serve-attack", a as u64);
                let bytes = corrupt_frame(op, "{\"kind\":\"ping\",\"id\":\"atk\"}", &mut rng);
                match std::net::TcpStream::connect(addr) {
                    Ok(mut stream) => {
                        let _ = stream.write_all(&bytes);
                        let _ = stream.shutdown(std::net::Shutdown::Write);
                        let mut sink = Vec::new();
                        let _ = stream.read_to_end(&mut sink);
                    }
                    Err(e) => attack_errors
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(format!("attack {a} connect: {e}")),
                }
            }
        });
        // Clients: a fixed partition of the job stream per connection.
        for c in 0..CLIENTS {
            let results = &results;
            scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    return;
                };
                let policy = RetryPolicy {
                    base_ms: 2,
                    max_ms: 200,
                    max_retries: 200,
                    seed,
                };
                for (i, spec) in specs.iter().enumerate() {
                    if i % CLIENTS != c {
                        continue;
                    }
                    let id = format!("job-{i}");
                    let payload = render_request(spec, &id, texts, sick);
                    let t0 = Instant::now();
                    match client.call_with_retry(&payload, &policy, i as u64) {
                        Ok(outcome) => {
                            let us = t0.elapsed().as_micros() as u64;
                            results
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)[i] =
                                Some((outcome.response, us, u64::from(outcome.retries)));
                        }
                        Err(_) => {
                            // Left as None: counted as a mismatch (a lost
                            // response is exactly what the harness hunts).
                        }
                    }
                }
            });
        }
    });
    let wall_ms = started.elapsed().as_millis();
    for e in attack_errors
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        eprintln!("serve_harness: {e}");
    }

    // Liveness probe after everything (poison, corruption, deadlines).
    let alive_at_end = Client::connect(addr)
        .and_then(|mut c| c.call("{\"kind\":\"ping\",\"id\":\"probe\"}"))
        .map(|r| r.contains("pong"))
        .unwrap_or(false);

    // Judge responses and fold the determinism digest (job order, not
    // completion order).
    let results = results
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut digest_input = String::new();
    let mut latencies = Vec::with_capacity(specs.len());
    let mut retries_total = 0u64;
    let mut mismatches = 0usize;
    for (i, (spec, slot)) in specs.iter().zip(&results).enumerate() {
        let Some((response, us, retries)) = slot else {
            mismatches += 1;
            eprintln!("LOST: job-{i} got no response at {workers} worker(s)");
            continue;
        };
        latencies.push(*us);
        retries_total += retries;
        digest_input.push_str(&format!("job-{i}\n{response}\n"));
        let code = varitune_serve::protocol::response_error_code(response);
        let verdict_ok = match spec.expect {
            Expect::Ok => code.is_none() && response.contains("\"ok\":"),
            Expect::Rejected => code.as_deref() == Some("rejected"),
            Expect::Deadline => code.as_deref() == Some("deadline"),
            Expect::Panic => code.as_deref() == Some("panic"),
        };
        if !verdict_ok {
            mismatches += 1;
            let head = &response[..response.len().min(160)];
            eprintln!(
                "UNEXPECTED: job-{i} ({}, {:?}): {head}",
                spec.kind, spec.expect
            );
        }
    }
    let digest = fnv1a64(digest_input.as_bytes());
    let characterizations = server
        .registry()
        .characterizations
        .load(std::sync::atomic::Ordering::Relaxed);
    let report = server.shutdown();
    Ok(RunOutcome {
        workers,
        digest,
        wall_ms,
        latencies_us: latencies,
        retries_total,
        mismatches,
        stats: report.stats,
        characterizations,
        alive_at_end,
    })
}
