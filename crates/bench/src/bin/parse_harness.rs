//! Comparative Liberty-ingestion bench: classic parser vs the zero-copy
//! pipeline.
//!
//! Generates the full 304-cell library plus a synthetic-giant replica,
//! then measures throughput (MB/s) of the classic recovering parser
//! against the zero-copy recovering parser at 1, 2 and 8 threads, and of
//! classic vs routed strict parsing. After benching it runs a
//! differential gate: over the seeded fault-harness corpora the zero-copy
//! parser must reproduce the classic parser's library *and* its rendered
//! diagnostics byte-for-byte under every strictness policy, and the
//! parallel parse must be bit-identical across thread counts.
//!
//! ```text
//! parse_harness [--smoke] [--seed S] [--out PATH] [--trace PATH]
//! ```
//!
//! `--smoke` shrinks the giant and the corpus and drops the speedup
//! floor so the binary finishes quickly in CI; the full run (the one
//! whose `BENCH_parse.json` is committed) refuses to pass unless the
//! zero-copy parser beats classic by at least [`SPEEDUP_FLOOR`]× on the
//! synthetic giant.

use std::process::ExitCode;
use std::time::Instant;

use varitune_bench::corrupt::liberty_corpus;
use varitune_bench::trace::run_traced;
use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_liberty::{
    parse_library, parse_library_classic, parse_library_recovering_classic,
    parse_library_recovering_threads, write_library, Library,
};

/// Full-mode gate: zero-copy recovering throughput on the synthetic
/// giant must be at least this multiple of the classic parser's.
const SPEEDUP_FLOOR: f64 = 3.0;

/// Thread counts the zero-copy parser is benched and bit-checked at.
const THREADS: &[usize] = &[1, 2, 8];

fn main() -> ExitCode {
    let mut smoke = false;
    let mut seed = 7u64;
    let mut out = "BENCH_parse.json".to_string();
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects a u64"),
            },
            "--out" => match it.next() {
                Some(p) => out = p,
                None => return usage("--out expects a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!("usage: parse_harness [--smoke] [--seed S] [--out PATH] [--trace PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    run_traced(trace.as_deref(), || run(smoke, seed, &out))
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("parse_harness: {msg}");
    eprintln!("usage: parse_harness [--smoke] [--seed S] [--out PATH] [--trace PATH]");
    ExitCode::FAILURE
}

fn run(smoke: bool, seed: u64, out: &str) -> ExitCode {
    // Smoke keeps the giant at 1× (the 304-cell text itself, ~6 MB) and
    // a single timing iteration; the full run replicates the library 4×
    // (~24 MB) and takes the best of five.
    let (giant_factor, iters, per_op) = if smoke { (1, 1, 1) } else { (4, 5, 2) };

    let generate_span = varitune_trace::span!("parse_harness.generate");
    let pristine_lib = generate_nominal(&GenerateConfig::full());
    let pristine = match write_library(&pristine_lib) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("parse_harness: generated library failed to serialize: {e}");
            return ExitCode::FAILURE;
        }
    };
    let giant = match write_library(&replicate(&pristine_lib, giant_factor)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("parse_harness: synthetic giant failed to serialize: {e}");
            return ExitCode::FAILURE;
        }
    };
    drop(generate_span);
    println!(
        "parse harness: 304-cell library {:.1} MB, synthetic giant {:.1} MB ({}x), {} iteration(s)",
        mb(pristine.len()),
        mb(giant.len()),
        giant_factor,
        iters
    );

    let bench_span = varitune_trace::span!("parse_harness.bench");
    let corpora = [("cells304", &pristine), ("giant", &giant)];
    let mut results: Vec<CorpusResult> = Vec::new();
    for (name, text) in corpora {
        let classic = bench_mbps(text, iters, parse_library_recovering_classic);
        let mut fast = Vec::new();
        for &threads in THREADS {
            fast.push((
                threads,
                bench_mbps(text, iters, |t| {
                    parse_library_recovering_threads(t, threads)
                }),
            ));
        }
        let strict_classic = bench_mbps(text, iters, parse_library_classic);
        let strict_fast = bench_mbps(text, iters, parse_library);
        let best_fast = fast.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
        println!(
            "  {name}: classic {classic:.1} MB/s, zero-copy {} MB/s, speedup {:.2}x",
            fast.iter()
                .map(|&(t, v)| format!("{v:.1} (t={t})"))
                .collect::<Vec<_>>()
                .join(" / "),
            best_fast / classic
        );
        results.push(CorpusResult {
            name,
            bytes: text.len(),
            classic_mbps: classic,
            fast_mbps: fast,
            strict_classic_mbps: strict_classic,
            strict_fast_mbps: strict_fast,
        });
    }
    drop(bench_span);

    let diff_span = varitune_trace::span!("parse_harness.differential");
    // 1. Fault corpora: zero-copy output must match classic byte-for-byte
    //    under every strictness policy, at every thread count.
    let corpus = liberty_corpus(&pristine, seed, per_op);
    let mut mismatches = 0usize;
    for (op, damaged) in &corpus {
        let (want_lib, want_diags) = parse_library_recovering_classic(damaged);
        let want = (render_library(&want_lib), render_diags(&want_diags));
        for &threads in THREADS {
            let (got_lib, got_diags) = parse_library_recovering_threads(damaged, threads);
            let got = (render_library(&got_lib), render_diags(&got_diags));
            if got != want {
                mismatches += 1;
                eprintln!("MISMATCH: op {op} threads {threads}: recovering output diverges");
            }
        }
        let want_strict = render_strict(parse_library_classic(damaged));
        let got_strict = render_strict(parse_library(damaged));
        if got_strict != want_strict {
            mismatches += 1;
            eprintln!("MISMATCH: op {op}: strict output diverges");
        }
    }
    // 2. Thread bit-identity on the clean giant: same library, same
    //    (empty) diagnostics, and identical re-serialization.
    let mut thread_divergences = 0usize;
    let (base_lib, base_diags) = parse_library_recovering_threads(&giant, THREADS[0]);
    let base = (render_library(&base_lib), render_diags(&base_diags));
    for &threads in &THREADS[1..] {
        let (lib, diags) = parse_library_recovering_threads(&giant, threads);
        if (render_library(&lib), render_diags(&diags)) != base
            || write_library(&lib).ok() != write_library(&base_lib).ok()
        {
            thread_divergences += 1;
            eprintln!(
                "MISMATCH: giant parse at {threads} threads diverges from {}",
                THREADS[0]
            );
        }
    }
    drop(diff_span);

    let giant_speedup = results
        .iter()
        .find(|r| r.name == "giant")
        .map(|r| r.fast_mbps.iter().map(|&(_, v)| v).fold(0.0f64, f64::max) / r.classic_mbps)
        .unwrap_or(0.0);

    let json = render_json(
        smoke,
        seed,
        giant_factor,
        iters,
        corpus.len(),
        mismatches,
        thread_divergences,
        giant_speedup,
        &results,
    );
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("parse_harness: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{} differential scenario(s): {mismatches} mismatch(es), {thread_divergences} \
         thread divergence(s), giant speedup {giant_speedup:.2}x -> {out}",
        corpus.len()
    );

    if mismatches > 0 || thread_divergences > 0 {
        return ExitCode::FAILURE;
    }
    if !smoke && giant_speedup < SPEEDUP_FLOOR {
        eprintln!(
            "parse_harness: zero-copy speedup {giant_speedup:.2}x on the synthetic giant \
             is below the {SPEEDUP_FLOOR}x floor"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Replicates every cell of `lib` `factor`× under distinct names, so the
/// giant stays a valid library (no duplicate-cell diagnostics).
fn replicate(lib: &Library, factor: usize) -> Library {
    let mut giant = lib.clone();
    giant.name = format!("{}_giant", lib.name);
    for k in 1..factor {
        for cell in &lib.cells {
            let mut c = cell.clone();
            c.name = format!("{}_g{k}", cell.name);
            giant.cells.push(c);
        }
    }
    giant
}

/// Best-of-`iters` throughput of `f` over `text`, in MB/s.
///
/// The timed region covers parsing only: `f` returns its parse result
/// and the drop happens after the clock stops (the same convention as
/// criterion's `iter_with_large_drop`), so deallocating a multi-MB
/// `Library` — a cost identical for both parsers — does not flatten the
/// measured ratio between them.
fn bench_mbps<T>(text: &str, iters: usize, f: impl Fn(&str) -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters.max(1) {
        let start = Instant::now();
        let parsed = f(text);
        best = best.min(start.elapsed().as_secs_f64());
        drop(parsed);
    }
    mb(text.len()) / best
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1.0e6
}

/// Debug rendering of a library; used instead of `PartialEq` so NaN
/// payloads (inject-nan corpora) still compare meaningfully.
fn render_library(lib: &Library) -> String {
    format!("{lib:?}")
}

fn render_diags(diags: &[varitune_liberty::Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn render_strict(r: Result<Library, varitune_liberty::ParseLibertyError>) -> String {
    match r {
        Ok(lib) => format!("ok: {}", render_library(&lib)),
        Err(e) => format!("err: {e}"),
    }
}

struct CorpusResult {
    name: &'static str,
    bytes: usize,
    classic_mbps: f64,
    fast_mbps: Vec<(usize, f64)>,
    strict_classic_mbps: f64,
    strict_fast_mbps: f64,
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    seed: u64,
    giant_factor: usize,
    iters: usize,
    scenarios: usize,
    mismatches: usize,
    thread_divergences: usize,
    giant_speedup: f64,
    results: &[CorpusResult],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"varitune-parse-harness/1\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"giant_factor\": {giant_factor},\n"));
    s.push_str(&format!("  \"iterations\": {iters},\n"));
    s.push_str(&format!("  \"differential_scenarios\": {scenarios},\n"));
    s.push_str(&format!("  \"differential_mismatches\": {mismatches},\n"));
    s.push_str(&format!(
        "  \"thread_divergences\": {thread_divergences},\n"
    ));
    s.push_str(&format!("  \"giant_speedup\": {giant_speedup:.2},\n"));
    s.push_str("  \"corpora\": {\n");
    let mut first = true;
    for r in results {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        let fast = r
            .fast_mbps
            .iter()
            .map(|&(t, v)| format!("\"{t}\": {v:.1}"))
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    \"{}\": {{\"bytes\": {}, \"classic_mb_s\": {:.1}, \
             \"zero_copy_mb_s\": {{{fast}}}, \"strict_classic_mb_s\": {:.1}, \
             \"strict_zero_copy_mb_s\": {:.1}}}",
            r.name, r.bytes, r.classic_mbps, r.strict_classic_mbps, r.strict_fast_mbps
        ));
    }
    s.push_str("\n  }\n}\n");
    s
}
