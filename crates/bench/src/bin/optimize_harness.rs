//! Offline optimizer-backend harness: runs the full Table-2 grid through
//! the `Optimizer` trait, then the deterministic evolutionary Pareto
//! search, and commits the front next to the paper points.
//!
//! ```text
//! optimize_harness [--smoke] [--threads LIST] [--seed N] [--out PATH]
//!                  [--trace PATH]
//! ```
//!
//! Everything runs on the golden small-scale flow
//! (`FlowConfig::small_for_tests()` at the golden suite's 6 ns clock), so
//! the emitted paper points are the exact operating points the golden
//! snapshot pins. The evolutionary search runs once per thread count in
//! `--threads` (default `1,2,8`) and the harness **asserts** — before
//! writing anything — that the fronts are f64-bit-identical across thread
//! counts and that a rerun reproduces the front byte-identically. In full
//! (non-smoke) mode it additionally gates on the front carrying at least
//! five points with at least one matching-or-dominating a Table-2 point.
//! `--trace` writes a `varitune-trace` flow trace as the other harnesses
//! do.

use std::process::ExitCode;
use std::time::Instant;

use varitune_bench::trace::run_traced;
use varitune_core::flow::{Flow, FlowConfig};
use varitune_core::{
    EvolutionConfig, EvolutionaryOptimizer, PaperMethodOptimizer, TuningMethod, TuningParams,
};
use varitune_synth::SynthConfig;

/// Clock period of the golden small-scale grid (`tests/golden_experiments.rs`).
const PERIOD_NS: f64 = 6.0;

fn main() -> ExitCode {
    let mut smoke = false;
    let mut threads: Vec<usize> = vec![1, 2, 8];
    let mut seed = EvolutionConfig::default().seed;
    let mut out = "BENCH_optimize.json".to_string();
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--threads" => match it.next().map(|v| parse_threads(&v)) {
                Some(Some(list)) => threads = list,
                _ => return usage("--threads expects a comma-separated list of positive integers"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects an integer"),
            },
            "--out" => match it.next() {
                Some(p) => out = p,
                None => return usage("--out expects a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: optimize_harness [--smoke] [--threads LIST] [--seed N] [--out PATH] \
                     [--trace PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    run_traced(trace.as_deref(), || run(smoke, &threads, seed, &out))
}

struct Point {
    label: String,
    sigma: f64,
    area: f64,
    restricted_pins: usize,
}

fn run(smoke: bool, threads: &[usize], seed: u64, out: &str) -> ExitCode {
    let scale = if smoke { "smoke" } else { "full" };
    println!("optimizer-backend harness (offline) — {scale} scale, golden small-scale grid");

    // Smoke bounds the search to fit the CI budget; full mode is what the
    // committed BENCH_optimize.json carries.
    let (population, generations) = if smoke { (6, 2) } else { (16, 8) };

    let prepare_span = varitune_trace::span!("optimize_harness.prepare");
    let flow = match Flow::prepare(FlowConfig::small_for_tests()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("flow preparation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let synth = SynthConfig::with_clock_period(PERIOD_NS);
    drop(prepare_span);

    // The five paper methods × four Table-2 parameters, all routed through
    // the Optimizer trait — the same 20 operating points the golden
    // snapshot suite pins.
    let grid_span = varitune_trace::span!("optimize_harness.paper_grid");
    let t0 = Instant::now();
    let mut paper: Vec<Point> = Vec::with_capacity(20);
    for method in TuningMethod::ALL {
        for params in TuningParams::table2_sweep(method) {
            let backend = PaperMethodOptimizer { method, params };
            let candidate = match flow.optimize(&backend, &synth) {
                Ok(mut cands) if cands.len() == 1 => cands.remove(0),
                Ok(_) => {
                    eprintln!("paper backend returned an unexpected candidate count");
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("paper method {method} failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            paper.push(Point {
                label: format!("{method} ({})", params.varied_value(method)),
                sigma: candidate.sigma(),
                area: candidate.area(),
                restricted_pins: candidate.tuned.restricted_pins,
            });
        }
    }
    let paper_grid_ms = ms(t0);
    drop(grid_span);
    println!(
        "paper grid:   {} points through PaperMethodOptimizer in {paper_grid_ms:.1} ms",
        paper.len()
    );

    // Evolutionary search, once per requested thread count. The fronts
    // must agree to the bit; a rerun must reproduce the first byte for
    // byte. Both are checked before anything is written.
    let search_span = varitune_trace::span!("optimize_harness.search");
    let t0 = Instant::now();
    let mut fronts: Vec<Vec<Point>> = Vec::with_capacity(threads.len() + 1);
    let mut runs: Vec<usize> = threads.to_vec();
    runs.push(threads[0]); // determinism rerun
    for &t in &runs {
        let config = EvolutionConfig {
            seed,
            population,
            generations,
            threads: t,
            seed_paper_methods: true,
        };
        let front = match flow.optimize(&EvolutionaryOptimizer::new(config), &synth) {
            Ok(cands) => cands
                .iter()
                .enumerate()
                .map(|(i, c)| Point {
                    label: format!("front #{i}"),
                    sigma: c.sigma(),
                    area: c.area(),
                    restricted_pins: c.tuned.restricted_pins,
                })
                .collect::<Vec<_>>(),
            Err(e) => {
                eprintln!("evolutionary search (threads = {t}) failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        fronts.push(front);
    }
    let search_ms = ms(t0);
    drop(search_span);

    for (front, &t) in fronts.iter().zip(&runs).skip(1) {
        if !bit_identical(&fronts[0], front) {
            eprintln!(
                "determinism violation: front at threads = {t} differs from threads = {}",
                runs[0]
            );
            return ExitCode::FAILURE;
        }
    }
    if render_points(&fronts[fronts.len() - 1]) != render_points(&fronts[0]) {
        eprintln!("determinism violation: rerun did not reproduce the front byte-identically");
        return ExitCode::FAILURE;
    }
    let front = &fronts[0];
    println!(
        "search:       {} front points in {search_ms:.1} ms, bit-identical across threads {:?} \
         and a rerun",
        front.len(),
        threads
    );

    let matched = paper
        .iter()
        .filter(|p| front.iter().any(|f| f.sigma <= p.sigma && f.area <= p.area))
        .count();
    println!(
        "coverage:     front matches-or-dominates {matched}/{} paper points",
        paper.len()
    );
    if !smoke {
        if front.len() < 5 {
            eprintln!("acceptance: front has {} points, need >= 5", front.len());
            return ExitCode::FAILURE;
        }
        if matched < 1 {
            eprintln!("acceptance: no front point matches-or-dominates a Table-2 point");
            return ExitCode::FAILURE;
        }
    }

    let json = render_json(
        scale,
        seed,
        population,
        generations,
        threads,
        &paper,
        front,
        matched,
        paper_grid_ms,
        search_ms,
    );
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn bit_identical(a: &[Point], b: &[Point]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.sigma.to_bits() == y.sigma.to_bits()
                && x.area.to_bits() == y.area.to_bits()
                && x.restricted_pins == y.restricted_pins
        })
}

/// Deterministic JSON fragment for a point list. `{}` on `f64` prints the
/// shortest round-trip representation, so equal strings ⇔ equal bits.
fn render_points(points: &[Point]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"label\": \"{}\", \"sigma_ns\": {}, \"area_um2\": {}, \
                 \"restricted_pins\": {}}}",
                p.label, p.sigma, p.area, p.restricted_pins
            )
        })
        .collect();
    rows.join(",\n")
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &str,
    seed: u64,
    population: usize,
    generations: usize,
    threads: &[usize],
    paper: &[Point],
    front: &[Point],
    matched: usize,
    paper_grid_ms: f64,
    search_ms: f64,
) -> String {
    let threads: Vec<String> = threads.iter().map(ToString::to_string).collect();
    format!(
        "{{\n  \"scale\": \"{scale}\",\n  \"clock_period_ns\": {PERIOD_NS},\n  \
         \"seed\": {seed},\n  \"population\": {population},\n  \
         \"generations\": {generations},\n  \"threads_checked\": [{}],\n  \
         \"paper_methods\": [\n{}\n  ],\n  \"front\": [\n{}\n  ],\n  \
         \"paper_points_matched_or_dominated\": {matched},\n  \
         \"determinism\": {{\"bit_identical_across_threads\": true, \
         \"rerun_byte_identical\": true}},\n  \
         \"timing\": {{\"paper_grid_ms\": {paper_grid_ms:.1}, \
         \"search_ms\": {search_ms:.1}}}\n}}\n",
        threads.join(", "),
        render_points(paper),
        render_points(front),
    )
}

fn ms(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn parse_threads(s: &str) -> Option<Vec<usize>> {
    let list: Option<Vec<usize>> = s
        .split(',')
        .map(|p| p.trim().parse().ok().filter(|&t: &usize| t > 0))
        .collect();
    list.filter(|l| !l.is_empty())
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: optimize_harness [--smoke] [--threads LIST] [--seed N] [--out PATH] [--trace PATH]"
    );
    ExitCode::FAILURE
}
