//! Differential SSTA harness: statistical STA versus graph-level Monte
//! Carlo on the paper MCU and the 10× SoC.
//!
//! ```text
//! ssta_harness [--smoke] [--scale paper|x10|all] [--trials N]
//!              [--threads N,N,...] [--repeat N] [--out PATH] [--trace PATH]
//! ```
//!
//! For each scale the harness characterizes the statistical library,
//! builds the timing engine, runs the canonical-form SSTA propagation at
//! every requested thread count (reports must be **digest-identical**
//! across thread counts and across a rerun — enforced on every host), and
//! then samples the *same* arc model with the graph Monte-Carlo oracle.
//! Per-endpoint SSTA mean must agree with the MC sample mean within 2 %,
//! the *median* endpoint sigma within 5 %, and the *worst* endpoint sigma
//! within 20 % (paper scale, full profile; looser at the reduced trial
//! counts of `--smoke` and the x10 scale — see [`Tolerances`] for why the
//! worst-endpoint bound is wider), criticalities must sum to 1, and the
//! MC itself must be bit-identical across thread counts.
//!
//! The headline perf claim — SSTA beats Monte Carlo by ≥ 10× wall-clock at
//! paper scale — is asserted in the full profile only (any host: the ratio
//! pits one propagation against thousands, so it does not depend on core
//! count). Results land in `BENCH_ssta.json`.

use std::process::ExitCode;
use std::time::Instant;

use varitune_bench::trace::run_traced;
use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig, StatLibrary};
use varitune_netlist::{generate_mcu, generate_soc, McuConfig, SocConfig};
use varitune_sta::{
    GraphMcResult, SstaModel, SstaOptions, SstaReport, StaConfig, TimingGraph, WireModel,
};
use varitune_synth::{map_netlist, map_soa, LibraryConstraints, TargetLibrary};

const DEFAULT_THREADS: [usize; 3] = [1, 2, 8];

/// Clock period (ns) the MCU/SoC designs are analyzed at — the same
/// operating point `sta_harness` uses.
const PERIOD_NS: f64 = 2.41;

/// MC libraries behind the statistical library (full profile).
const MC_LIBRARIES: usize = 25;

/// Master seed for characterization and the MC oracle.
const SEED: u64 = 7;

struct Tolerances {
    /// Relative endpoint/design mean tolerance.
    mean_rel: f64,
    /// Relative tolerance on the *median* endpoint sigma error, and on the
    /// design-level sigma: the statistics that drive the yield objective.
    sigma_rel: f64,
    /// Relative tolerance on the *worst* endpoint sigma error. Wider than
    /// `sigma_rel` by design: Clark's max is exact in second moments only
    /// for jointly Gaussian inputs, and cascaded near-tie maxes of skewed
    /// maxima (mux/adder trees) underestimate sigma at a handful of
    /// shallow endpoints. Correlation itself is exact — every arc carries
    /// its own keyed source — so this residue is the Gaussian-form
    /// approximation, not lost covariance.
    sigma_rel_worst: f64,
    /// Absolute sigma floor (ns): shields near-degenerate endpoints where
    /// a relative bound is meaningless.
    sigma_abs: f64,
}

/// One completed scale measurement, rendered into `scale_rows`.
struct ScaleRow {
    scale: String,
    gates: usize,
    endpoints: usize,
    trials: usize,
    ssta_ms: f64,
    mc_ms: f64,
    speedup: f64,
    digest: u64,
    ssta_design_mean: f64,
    ssta_design_sigma: f64,
    mc_design_mean: f64,
    mc_design_sigma: f64,
    yield_at_clock: f64,
    max_mean_rel_err: f64,
    median_sigma_err_rel: f64,
    max_sigma_err_rel: f64,
    criticality_sum: f64,
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut scale = "paper".to_string();
    let mut trials = 10_000usize;
    let mut repeat = 3usize;
    let mut threads: Vec<usize> = DEFAULT_THREADS.to_vec();
    let mut out = "BENCH_ssta.json".to_string();
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scale" => match it.next() {
                Some(s) if ["paper", "x10", "all"].contains(&s.as_str()) => scale = s,
                _ => return usage("--scale expects paper, x10 or all"),
            },
            "--trials" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => trials = n,
                _ => return usage("--trials expects a positive integer"),
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => repeat = n,
                _ => return usage("--repeat expects a positive integer"),
            },
            "--threads" => match it.next().map(parse_thread_list) {
                Some(Some(list)) if !list.is_empty() && !list.contains(&0) => threads = list,
                _ => return usage("--threads expects a comma-separated list like 1,2,8"),
            },
            "--out" => match it.next() {
                Some(p) => out = p,
                None => return usage("--out expects a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: ssta_harness [--smoke] [--scale paper|x10|all] [--trials N] \
                     [--threads N,N,...] [--repeat N] [--out PATH] [--trace PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    run_traced(trace.as_deref(), || {
        run(smoke, &scale, trials, repeat, &threads, &out)
    })
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn run(
    smoke: bool,
    scale: &str,
    trials: usize,
    repeat: usize,
    threads: &[usize],
    out: &str,
) -> ExitCode {
    let hw = hardware_threads();
    let profile = if smoke { "smoke" } else { "full" };
    println!(
        "SSTA harness (std::time::Instant, offline) — scale {scale}, {profile} profile, \
         {hw} hardware threads"
    );

    // One statistical library serves every scale.
    let build_span = varitune_trace::span!("ssta_harness.build");
    // The full 304-cell library even in smoke: the MCU/SoC generators
    // need every gate family; smoke economizes on MC libraries and design
    // scale instead.
    let gen_cfg = GenerateConfig::full();
    let mc_libs = if smoke { 6 } else { MC_LIBRARIES };
    let t0 = Instant::now();
    let nominal = generate_nominal(&gen_cfg);
    let mc = generate_mc_libraries(&nominal, &gen_cfg, mc_libs, SEED);
    let stat = match StatLibrary::from_libraries(&mc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("characterization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "characterized {} cells from {mc_libs} MC libraries in {:.1} ms",
        stat.mean.cells.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    drop(build_span);

    let mut rows: Vec<ScaleRow> = Vec::new();
    if scale == "paper" || scale == "all" {
        let tol = Tolerances {
            mean_rel: if smoke { 0.05 } else { 0.02 },
            sigma_rel: if smoke { 0.10 } else { 0.05 },
            sigma_rel_worst: if smoke { 0.25 } else { 0.20 },
            sigma_abs: 0.002,
        };
        match run_scale(&stat, "paper", smoke, trials, repeat, threads, &tol) {
            Ok(row) => rows.push(row),
            Err(code) => return code,
        }
    }
    if scale == "x10" || scale == "all" {
        // The SoC runs a reduced trial count; sigma sampling error scales
        // as 1/sqrt(2n), so the bound widens accordingly.
        let soc_trials = if smoke {
            trials
        } else {
            (trials / 20).max(100)
        };
        let tol = Tolerances {
            mean_rel: 0.05,
            sigma_rel: 0.10,
            sigma_rel_worst: 0.25,
            sigma_abs: 0.002,
        };
        match run_scale(&stat, "x10", smoke, soc_trials, repeat, threads, &tol) {
            Ok(row) => rows.push(row),
            Err(code) => return code,
        }
    }

    // The headline claim: at paper scale, full profile, SSTA must beat the
    // Monte Carlo it replaces by at least an order of magnitude.
    if !smoke {
        if let Some(paper) = rows.iter().find(|r| r.scale == "paper") {
            if paper.speedup < 10.0 {
                eprintln!(
                    "FAIL: SSTA speedup over {}-trial MC is {:.1}x (< 10x)",
                    paper.trials, paper.speedup
                );
                return ExitCode::FAILURE;
            }
            println!(
                "paper: SSTA {:.2} ms vs MC {:.0} ms — {:.0}x (>= 10x)",
                paper.ssta_ms, paper.mc_ms, paper.speedup
            );
        }
    }

    let json = render_json(hw, profile, &rows);
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

#[allow(clippy::too_many_lines)]
fn run_scale(
    stat: &StatLibrary,
    scale: &str,
    smoke: bool,
    trials: usize,
    repeat: usize,
    threads: &[usize],
    tol: &Tolerances,
) -> Result<ScaleRow, ExitCode> {
    // Build the design and the deterministic engine over the mean library.
    let build_span = varitune_trace::span!("ssta_harness.build");
    let cfg = StaConfig::with_clock_period(PERIOD_NS);
    let constraints = LibraryConstraints::unconstrained();
    let target = TargetLibrary::new(&stat.mean, &constraints);
    let mut graph = match scale {
        "paper" => {
            let mcu = if smoke {
                McuConfig::small_for_tests()
            } else {
                McuConfig::paper_scale()
            };
            let design = match map_netlist(&generate_mcu(&mcu), &target, WireModel::default()) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{scale}: mapping failed: {e}");
                    return Err(ExitCode::FAILURE);
                }
            };
            match TimingGraph::new(design, &stat.mean, &cfg) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("{scale}: engine build failed: {e}");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
        _ => {
            let soc = if smoke {
                SocConfig::x10().smoke()
            } else {
                SocConfig::x10()
            };
            let design = match map_soa(generate_soc(&soc), &target, WireModel::default()) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{scale}: mapping failed: {e}");
                    return Err(ExitCode::FAILURE);
                }
            };
            match TimingGraph::new_soa(design, &stat.mean, &cfg) {
                Ok(g) => g,
                Err(e) => {
                    eprintln!("{scale}: engine build failed: {e}");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
    };
    let gates = graph.gate_count();
    println!("{scale}: {gates} gates; {trials} MC trials; best of {repeat}");
    drop(build_span);

    // SSTA propagation at every thread count: digest-identical, timed.
    let analyze_span = varitune_trace::span!("ssta_harness.analyze");
    let opts = SstaOptions {
        // The SoC carries ~300k nets; 32 local terms per form bounds the
        // working set without measurably moving the moments (accuracy is
        // flat from M=16 up — the error floor is the Clark approximation).
        max_local_terms: if scale == "x10" { 32 } else { 128 },
        ..SstaOptions::default()
    };
    let mut ssta_ms = f64::INFINITY;
    let mut reference: Option<SstaReport> = None;
    for &t in threads {
        graph.set_threads(t);
        let mut dt = f64::INFINITY;
        let mut report = None;
        for _ in 0..repeat {
            let t0 = Instant::now();
            let model = match SstaModel::build(&graph, stat, opts) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{scale}: SSTA model build failed: {e}");
                    return Err(ExitCode::FAILURE);
                }
            };
            let r = match model.analyze() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{scale}: SSTA analysis failed: {e}");
                    return Err(ExitCode::FAILURE);
                }
            };
            dt = dt.min(t0.elapsed().as_secs_f64() * 1e3);
            report = Some(r);
        }
        let report = report.expect("repeat >= 1");
        match &reference {
            None => reference = Some(report),
            Some(r) => {
                if report.digest() != r.digest() {
                    eprintln!("{scale}: SSTA digest diverged at {t} threads");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
        println!("SSTA @ {t:>2} thr:   {dt:>9.3} ms");
        ssta_ms = ssta_ms.min(dt);
    }
    let report = reference.expect("at least one thread count");
    // Rerun at the first thread count: the digest must be reproducible.
    graph.set_threads(threads[0]);
    let rerun = SstaModel::build(&graph, stat, opts)
        .and_then(|m| m.analyze())
        .map_err(|e| {
            eprintln!("{scale}: SSTA rerun failed: {e}");
            ExitCode::FAILURE
        })?;
    if rerun.digest() != report.digest() {
        eprintln!("{scale}: SSTA rerun digest diverged");
        return Err(ExitCode::FAILURE);
    }
    println!(
        "SSTA digest {:#018x} (threads {threads:?} + rerun)",
        report.digest()
    );
    let crit_sum = report.criticality_sum();
    if (crit_sum - 1.0).abs() > 1e-9 {
        eprintln!("{scale}: criticalities sum to {crit_sum}, expected 1");
        return Err(ExitCode::FAILURE);
    }
    drop(analyze_span);

    // The Monte-Carlo oracle over the same arc model. Bit-identity across
    // thread counts is checked on a short prefix; the full run then uses
    // every core.
    let mc_span = varitune_trace::span!("ssta_harness.mc");
    let model = SstaModel::build(&graph, stat, opts).map_err(|e| {
        eprintln!("{scale}: SSTA model build failed: {e}");
        ExitCode::FAILURE
    })?;
    let probe_trials = 128.min(trials);
    let mut probe: Option<GraphMcResult> = None;
    for &t in threads {
        let r = model.monte_carlo(probe_trials, SEED, t).map_err(|e| {
            eprintln!("{scale}: MC probe failed: {e}");
            ExitCode::FAILURE
        })?;
        match &probe {
            None => probe = Some(r),
            Some(p) => {
                if &r != p {
                    eprintln!("{scale}: MC diverged at {t} threads");
                    return Err(ExitCode::FAILURE);
                }
            }
        }
    }
    println!("MC bit-identical across threads {threads:?} ({probe_trials} trials)");
    let t0 = Instant::now();
    let mc = model.monte_carlo(trials, SEED, 0).map_err(|e| {
        eprintln!("{scale}: MC failed: {e}");
        ExitCode::FAILURE
    })?;
    let mc_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("MC {trials} trials: {mc_ms:>9.1} ms");
    drop(mc_span);

    // Differential gate: SSTA moments against MC sample moments. Scan
    // every endpoint first so a failure reports the worst offender, not
    // the first.
    let mut max_mean_rel = 0.0f64;
    let mut max_sigma_rel = 0.0f64;
    let mut sigma_rels: Vec<f64> = Vec::with_capacity(report.endpoints.len());
    let mut worst_mean: Option<(usize, f64, f64)> = None;
    let mut worst_sigma: Option<(usize, f64, f64)> = None;
    for (i, ep) in report.endpoints.iter().enumerate() {
        let (m, s) = (mc.endpoint_mean[i], mc.endpoint_sigma[i]);
        let mean_rel = (ep.mean - m).abs() / m.max(1e-9);
        if mean_rel > max_mean_rel {
            max_mean_rel = mean_rel;
            worst_mean = Some((i, ep.mean, m));
        }
        if s > tol.sigma_abs {
            let sigma_rel = (ep.sigma - s).abs() / s;
            sigma_rels.push(sigma_rel);
            if sigma_rel > max_sigma_rel {
                max_sigma_rel = sigma_rel;
                worst_sigma = Some((i, ep.sigma, s));
            }
        }
    }
    sigma_rels.sort_by(f64::total_cmp);
    let median_sigma_rel = if sigma_rels.is_empty() {
        0.0
    } else {
        sigma_rels[sigma_rels.len() / 2]
    };
    if max_mean_rel > tol.mean_rel {
        let (i, a, m) = worst_mean.unwrap_or_default();
        eprintln!(
            "{scale}: endpoint {i} mean off by {:.2}% (SSTA {a} vs MC {m})",
            max_mean_rel * 100.0
        );
        return Err(ExitCode::FAILURE);
    }
    if median_sigma_rel > tol.sigma_rel {
        eprintln!(
            "{scale}: median endpoint sigma off by {:.2}% (bound {:.0}%)",
            median_sigma_rel * 100.0,
            tol.sigma_rel * 100.0
        );
        return Err(ExitCode::FAILURE);
    }
    if max_sigma_rel > tol.sigma_rel_worst {
        let (i, a, s) = worst_sigma.unwrap_or_default();
        eprintln!(
            "{scale}: endpoint {i} sigma off by {:.2}% (SSTA {a} vs MC {s})",
            max_sigma_rel * 100.0
        );
        return Err(ExitCode::FAILURE);
    }
    let design_mean_rel = (report.design_mean() - mc.design_mean).abs() / mc.design_mean;
    let design_sigma_err = (report.design_sigma() - mc.design_sigma).abs();
    // The design form is a max over *every* endpoint — the statistic most
    // exposed to Clark's Gaussian-form skew (thousands of near-tie folds)
    // — so its sigma gets twice the median-endpoint allowance.
    if design_mean_rel > tol.mean_rel
        || design_sigma_err > (2.0 * tol.sigma_rel * mc.design_sigma).max(tol.sigma_abs)
    {
        eprintln!(
            "{scale}: design moments diverged — SSTA ({}, {}) vs MC ({}, {})",
            report.design_mean(),
            report.design_sigma(),
            mc.design_mean,
            mc.design_sigma
        );
        return Err(ExitCode::FAILURE);
    }
    println!(
        "moments agree: worst endpoint mean {:.2}%, median sigma {:.2}%, worst sigma {:.2}% \
         (bounds {:.0}% / {:.0}% / {:.0}%)",
        max_mean_rel * 100.0,
        median_sigma_rel * 100.0,
        max_sigma_rel * 100.0,
        tol.mean_rel * 100.0,
        tol.sigma_rel * 100.0,
        tol.sigma_rel_worst * 100.0
    );

    Ok(ScaleRow {
        scale: scale.to_string(),
        gates,
        endpoints: report.endpoints.len(),
        trials,
        ssta_ms,
        mc_ms,
        speedup: mc_ms / ssta_ms,
        digest: report.digest(),
        ssta_design_mean: report.design_mean(),
        ssta_design_sigma: report.design_sigma(),
        mc_design_mean: mc.design_mean,
        mc_design_sigma: mc.design_sigma,
        yield_at_clock: report.yield_at(PERIOD_NS),
        max_mean_rel_err: max_mean_rel,
        median_sigma_err_rel: median_sigma_rel,
        max_sigma_err_rel: max_sigma_rel,
        criticality_sum: crit_sum,
    })
}

fn render_json(hw: usize, profile: &str, rows: &[ScaleRow]) -> String {
    let scale_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"scale\": \"{}\",\n      \"gates\": {},\n      \
                 \"endpoints\": {},\n      \"mc_trials\": {},\n      \
                 \"ssta_ms\": {:.3},\n      \"mc_ms\": {:.1},\n      \
                 \"ssta_speedup_over_mc\": {:.1},\n      \
                 \"report_digest\": \"{:#018x}\",\n      \
                 \"ssta_design_mean_ns\": {:.6},\n      \
                 \"ssta_design_sigma_ns\": {:.6},\n      \
                 \"mc_design_mean_ns\": {:.6},\n      \
                 \"mc_design_sigma_ns\": {:.6},\n      \
                 \"yield_at_{}ns_clock\": {:.6},\n      \
                 \"worst_endpoint_mean_err_pct\": {:.3},\n      \
                 \"median_endpoint_sigma_err_pct\": {:.3},\n      \
                 \"worst_endpoint_sigma_err_pct\": {:.3},\n      \
                 \"criticality_sum\": {:.12},\n      \
                 \"digest_identical_across_threads\": true\n    }}",
                r.scale,
                r.gates,
                r.endpoints,
                r.trials,
                r.ssta_ms,
                r.mc_ms,
                r.speedup,
                r.digest,
                r.ssta_design_mean,
                r.ssta_design_sigma,
                r.mc_design_mean,
                r.mc_design_sigma,
                PERIOD_NS,
                r.yield_at_clock,
                r.max_mean_rel_err * 100.0,
                r.median_sigma_err_rel * 100.0,
                r.max_sigma_err_rel * 100.0,
                r.criticality_sum,
            )
        })
        .collect();
    format!(
        "{{\n  \"host_hardware_threads\": {hw},\n  \"profile\": \"{profile}\",\n  \
         \"scale_rows\": [\n{}\n  ]\n}}\n",
        scale_rows.join(",\n")
    )
}

fn parse_thread_list(s: String) -> Option<Vec<usize>> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().ok())
        .collect()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: ssta_harness [--smoke] [--scale paper|x10|all] [--trials N] \
         [--threads N,N,...] [--repeat N] [--out PATH] [--trace PATH]"
    );
    ExitCode::FAILURE
}
