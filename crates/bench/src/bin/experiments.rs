//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--scale small|paper] [--threads N] [--trace PATH] [all | <id> ...]
//! ```
//!
//! Ids: fig1..fig16, tab1..tab3. `all` (the default) runs everything in
//! reporting order. `--scale paper` uses the 304-cell library, 50 MC
//! libraries and the ~20 k-gate design; `--scale small` is a fast sanity
//! run. `--threads N` sets the Monte-Carlo characterization worker count
//! (`0` = all cores, the default); results are bit-identical for any N.
//! `--trace PATH` writes a `varitune-trace` flow trace of the whole run.

use std::process::ExitCode;
use std::time::Instant;

use varitune_bench::experiments::{run_experiment, ALL_IDS};
use varitune_bench::trace::run_traced;
use varitune_bench::{Ctx, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::paper();
    let mut threads: usize = 0;
    let mut trace: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => match it.next().as_deref() {
                Some("paper") => scale = Scale::paper(),
                Some("small") => scale = Scale::small(),
                other => {
                    eprintln!("--scale expects `small` or `paper`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("--threads expects a non-negative integer");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => {
                    eprintln!("--trace expects a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--scale small|paper] [--threads N] [--trace PATH] \
                     [all | <id> ...]"
                );
                eprintln!("ids: {}", ALL_IDS.join(" "));
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment `{id}`; known: {}", ALL_IDS.join(" "));
            return ExitCode::FAILURE;
        }
    }

    scale.flow.threads = threads;

    run_traced(trace.as_deref(), || run(scale, &ids))
}

fn run(scale: Scale, ids: &[String]) -> ExitCode {
    eprintln!(
        "[experiments] preparing context at scale `{}`...",
        scale.label
    );
    let t0 = Instant::now();
    let ctx = Ctx::new(scale);
    eprintln!(
        "[experiments] ready in {:.1}s: min period {:.2} ns, design `{}` ({} gates)",
        t0.elapsed().as_secs_f64(),
        ctx.periods.high,
        ctx.flow.netlist.name,
        ctx.flow.netlist.gates.len()
    );

    for id in ids {
        let t = Instant::now();
        let out = run_experiment(&ctx, id);
        println!("==================== {id} ====================");
        println!("{out}");
        eprintln!(
            "[experiments] {id} done in {:.1}s",
            t.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
