//! Deterministic fault-injection harness for the hardened ingestion path.
//!
//! Applies seeded corruption operators to Liberty library text and to
//! generated netlists, then drives the full flow under every
//! [`Strictness`] policy **in-process**, asserting:
//!
//! * nothing ever panics (every scenario runs under `catch_unwind`),
//! * `Strict` rejects whenever a tolerant policy saw anything to tolerate,
//! * `Quarantine` / `BestEffort` either succeed with an *accurate*
//!   degradation ledger — every cell present in the parsed text but absent
//!   from the flow's library is accounted for as quarantined — or fail
//!   with a typed error,
//! * corrupted netlists produce typed synthesis errors, never crashes.
//!
//! All randomness comes from `varitune_variation::rng` seed derivation —
//! no wall clock, no OS entropy — so `BENCH_fault.json` is bit-identical
//! across reruns and thread counts.
//!
//! ```text
//! fault_harness [--ops N] [--seed S] [--threads T] [--out PATH] [--trace PATH]
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{self, AssertUnwindSafe};
use std::process::ExitCode;

use varitune_bench::corrupt::{corrupt_liberty, corrupt_netlist, LIBERTY_OPS, NETLIST_OPS};
use varitune_bench::trace::run_traced;
use varitune_core::flow::{Flow, FlowConfig, FlowError};
use varitune_core::{Degradation, Strictness};
use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_liberty::{parse_library_recovering, write_library};
use varitune_netlist::{generate_mcu, McuConfig};
use varitune_synth::{synthesize, LibraryConstraints, SynthConfig, SynthesisResult};
use varitune_variation::rng::rng_from;

fn main() -> ExitCode {
    let mut ops = 64usize;
    let mut seed = 7u64;
    let mut threads = 0usize;
    let mut out = "BENCH_fault.json".to_string();
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ops" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => ops = n,
                _ => return usage("--ops expects a positive integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed expects a u64"),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => threads = t,
                None => return usage("--threads expects an integer"),
            },
            "--out" => match it.next() {
                Some(p) => out = p,
                None => return usage("--out expects a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: fault_harness [--ops N] [--seed S] [--threads T] [--out PATH] \
                     [--trace PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    run_traced(trace.as_deref(), || run(ops, seed, threads, &out))
}

fn run(ops: usize, seed: u64, threads: usize, out: &str) -> ExitCode {
    println!(
        "fault harness: {ops} seeded scenario(s), seed {seed}, {} operator(s)",
        LIBERTY_OPS.len() + NETLIST_OPS.len()
    );

    // Pristine baselines the corruption operators start from. The written
    // text re-parses cleanly (pinned by a liberty test), so every
    // diagnostic a scenario produces is attributable to its operator. The
    // full cell inventory is required: the MCU's gate kinds don't map onto
    // the reduced test library.
    let generate = GenerateConfig::full();
    let mcu = McuConfig::small_for_tests();
    let pristine_lib = generate_nominal(&generate);
    let pristine_text = match write_library(&pristine_lib) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fault_harness: generated library failed to serialize: {e}");
            return ExitCode::FAILURE;
        }
    };
    let pristine_mcu = generate_mcu(&mcu);
    let flow_config = |strictness: Strictness| FlowConfig {
        generate: generate.clone(),
        mcu: mcu.clone(),
        mc_libraries: 8,
        seed,
        rho: 0.0,
        threads,
        strictness,
    };
    // Relaxed clock so a pristine small library closes timing; corrupted
    // runs may still fail cleanly, which the ledger records.
    let synth_cfg = SynthConfig::with_clock_period(12.0);

    // The default hook would spray backtraces for every caught panic;
    // scenarios are supposed to be panic-free, so silence it and report
    // anything caught ourselves.
    let saved_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let scenario_span = varitune_trace::span!("fault_harness.scenarios");
    let mut tally: BTreeMap<&str, OpTally> = BTreeMap::new();
    let mut panics = 0usize;
    let mut accounting_failures = 0usize;
    let mut policy_violations = 0usize;
    let all_ops = LIBERTY_OPS.len() + NETLIST_OPS.len();

    for i in 0..ops {
        let op_idx = i % all_ops;
        let mut rng = rng_from(seed, "fault", i as u64);
        if op_idx < LIBERTY_OPS.len() {
            let op = LIBERTY_OPS[op_idx];
            let corrupted = corrupt_liberty(op, &pristine_text, &mut rng);
            let entry = tally.entry(op).or_default();
            entry.scenarios += 1;

            let mut strict_rejected = false;
            let mut tolerant_saw_damage = false;
            for strictness in [
                Strictness::Strict,
                Strictness::Quarantine,
                Strictness::BestEffort,
            ] {
                let cfg = flow_config(strictness);
                let text = corrupted.clone();
                let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                    run_liberty_scenario(cfg, &text, &synth_cfg)
                }));
                match caught {
                    Err(payload) => {
                        panics += 1;
                        eprintln!(
                            "PANIC: scenario {i} op {op} policy {strictness}: {}",
                            panic_message(&payload)
                        );
                        entry.record(strictness, Outcome::Panicked, 0);
                    }
                    Ok(result) => match result {
                        ScenarioResult::Rejected => {
                            if strictness == Strictness::Strict {
                                strict_rejected = true;
                            }
                            entry.record(strictness, Outcome::Rejected, 0);
                        }
                        ScenarioResult::FailedCleanly => {
                            entry.record(strictness, Outcome::FailedCleanly, 0);
                        }
                        ScenarioResult::Succeeded {
                            degradations,
                            dropped_cells,
                            accounted,
                        } => {
                            if degradations > 0 {
                                tolerant_saw_damage = true;
                            }
                            if !accounted {
                                accounting_failures += 1;
                                eprintln!(
                                    "ACCOUNTING: scenario {i} op {op} policy {strictness}: \
                                     dropped cells not fully covered by degradations"
                                );
                            }
                            entry.record(strictness, Outcome::Succeeded, dropped_cells);
                        }
                    },
                }
            }
            // Strict must never accept what a tolerant policy had to
            // degrade around.
            if tolerant_saw_damage && !strict_rejected {
                policy_violations += 1;
                eprintln!(
                    "POLICY: scenario {i} op {op}: tolerant policies degraded \
                     but strict did not reject"
                );
            }
        } else {
            let op = NETLIST_OPS[op_idx - LIBERTY_OPS.len()];
            let mut nl = pristine_mcu.clone();
            corrupt_netlist(op, &mut nl, &mut rng);
            let entry = tally.entry(op).or_default();
            entry.scenarios += 1;
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                synthesize(
                    &nl,
                    &pristine_lib,
                    &LibraryConstraints::unconstrained(),
                    &synth_cfg,
                )
            }));
            match caught {
                Err(payload) => {
                    panics += 1;
                    eprintln!(
                        "PANIC: scenario {i} netlist op {op}: {}",
                        panic_message(&payload)
                    );
                    entry.netlist_panics += 1;
                }
                Ok(Err(_)) => entry.typed_errors += 1,
                Ok(Ok(SynthesisResult { .. })) => entry.clean_successes += 1,
            }
        }
    }

    panic::set_hook(saved_hook);
    drop(scenario_span);

    let json = render_json(
        ops,
        seed,
        panics,
        accounting_failures,
        policy_violations,
        &tally,
    );
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("fault_harness: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{ops} scenario(s): {panics} panic(s), {accounting_failures} accounting failure(s), \
         {policy_violations} policy violation(s) -> {out}"
    );
    if panics > 0 || accounting_failures > 0 || policy_violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fault_harness: {msg}");
    eprintln!(
        "usage: fault_harness [--ops N] [--seed S] [--threads T] [--out PATH] [--trace PATH]"
    );
    ExitCode::FAILURE
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Scenario execution

enum ScenarioResult {
    /// Ingestion screening refused the library ([`FlowError::Rejected`]).
    Rejected,
    /// Ingestion passed but a later stage returned a typed error.
    FailedCleanly,
    /// The whole flow ran.
    Succeeded {
        /// Number of degradations the flow accepted.
        degradations: usize,
        /// Cells quarantined out of the parsed library.
        dropped_cells: usize,
        /// Whether `parsed − kept == quarantined` held exactly.
        accounted: bool,
    },
}

fn run_liberty_scenario(cfg: FlowConfig, text: &str, synth_cfg: &SynthConfig) -> ScenarioResult {
    let flow = match Flow::prepare_from_liberty_text(cfg, text) {
        Ok(f) => f,
        Err(FlowError::Rejected { .. }) => return ScenarioResult::Rejected,
        Err(_) => return ScenarioResult::FailedCleanly,
    };

    // Accounting invariant: the set difference between what the recovering
    // parser produced and what the flow runs on is exactly the set of
    // quarantined cells in the report.
    let (parsed, _) = parse_library_recovering(text);
    let parsed_names: BTreeSet<&str> = parsed.cells.iter().map(|c| c.name.as_str()).collect();
    let kept_names: BTreeSet<&str> = flow.nominal.cells.iter().map(|c| c.name.as_str()).collect();
    let dropped: BTreeSet<&str> = parsed_names.difference(&kept_names).copied().collect();
    let quarantined: BTreeSet<&str> = flow.report.quarantined_cells().into_iter().collect();
    let accounted = dropped == quarantined
        && flow.report.parsed_cells == parsed.cells.len()
        && flow.report.kept_cells == flow.nominal.cells.len()
        && !flow.report.degradations.iter().any(|d| {
            matches!(d, Degradation::CellKeptForFeasibility { cell, .. }
                if !kept_names.contains(cell.as_str()))
        });

    let degradations = flow.report.degradations.len();
    let dropped_cells = quarantined.len();
    match flow.run_baseline(synth_cfg) {
        Ok(_) => ScenarioResult::Succeeded {
            degradations,
            dropped_cells,
            accounted,
        },
        // A quarantined library may no longer map the design; that must
        // surface as a typed error, which it just did.
        Err(_) => {
            if accounted {
                ScenarioResult::FailedCleanly
            } else {
                ScenarioResult::Succeeded {
                    degradations,
                    dropped_cells,
                    accounted,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tallying and JSON

#[derive(Clone, Copy, PartialEq)]
enum Outcome {
    Rejected,
    FailedCleanly,
    Succeeded,
    Panicked,
}

#[derive(Default)]
struct PolicyTally {
    rejected: usize,
    failed_cleanly: usize,
    succeeded: usize,
    panicked: usize,
    cells_dropped: usize,
}

#[derive(Default)]
struct OpTally {
    scenarios: usize,
    strict: PolicyTally,
    quarantine: PolicyTally,
    best_effort: PolicyTally,
    // Netlist operators only:
    typed_errors: usize,
    clean_successes: usize,
    netlist_panics: usize,
}

impl OpTally {
    fn record(&mut self, strictness: Strictness, outcome: Outcome, dropped: usize) {
        let t = match strictness {
            Strictness::Strict => &mut self.strict,
            Strictness::Quarantine => &mut self.quarantine,
            Strictness::BestEffort => &mut self.best_effort,
        };
        match outcome {
            Outcome::Rejected => t.rejected += 1,
            Outcome::FailedCleanly => t.failed_cleanly += 1,
            Outcome::Succeeded => t.succeeded += 1,
            Outcome::Panicked => t.panicked += 1,
        }
        t.cells_dropped += dropped;
    }

    fn is_netlist(&self) -> bool {
        self.typed_errors + self.clean_successes + self.netlist_panics > 0
    }
}

fn policy_json(t: &PolicyTally) -> String {
    format!(
        "{{\"rejected\": {}, \"failed_cleanly\": {}, \"succeeded\": {}, \
         \"panicked\": {}, \"cells_dropped\": {}}}",
        t.rejected, t.failed_cleanly, t.succeeded, t.panicked, t.cells_dropped
    )
}

fn render_json(
    ops: usize,
    seed: u64,
    panics: usize,
    accounting_failures: usize,
    policy_violations: usize,
    tally: &BTreeMap<&str, OpTally>,
) -> String {
    // No timings and no thread counts: the file must be bit-identical
    // across reruns and `--threads` values.
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"varitune-fault-harness/1\",\n");
    s.push_str(&format!("  \"ops\": {ops},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!(
        "  \"operators_exercised\": {},\n  \"panics\": {panics},\n",
        tally.len()
    ));
    s.push_str(&format!(
        "  \"accounting_failures\": {accounting_failures},\n"
    ));
    s.push_str(&format!("  \"policy_violations\": {policy_violations},\n"));
    s.push_str("  \"operators\": {\n");
    let mut first = true;
    for (op, t) in tally {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        if t.is_netlist() {
            s.push_str(&format!(
                "    \"{op}\": {{\"scenarios\": {}, \"typed_errors\": {}, \
                 \"clean_successes\": {}, \"panics\": {}}}",
                t.scenarios, t.typed_errors, t.clean_successes, t.netlist_panics
            ));
        } else {
            s.push_str(&format!(
                "    \"{op}\": {{\"scenarios\": {}, \"strict\": {}, \
                 \"quarantine\": {}, \"best_effort\": {}}}",
                t.scenarios,
                policy_json(&t.strict),
                policy_json(&t.quarantine),
                policy_json(&t.best_effort)
            ));
        }
    }
    s.push_str("\n  }\n}\n");
    s
}
