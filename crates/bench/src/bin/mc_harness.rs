//! Offline Monte-Carlo micro-harness: wall-clock timing with
//! `std::time::Instant`, no Criterion, no registry dependencies.
//!
//! ```text
//! mc_harness [--libraries N] [--samples N] [--threads N,N,...] [--repeat N]
//!            [--trace PATH]
//! ```
//!
//! Times the two parallel Monte-Carlo kernels — §IV library
//! characterization ([`generate_mc_libraries_threaded`]) and Fig. 15/16
//! path simulation ([`simulate_path_threaded`]) — at each requested thread
//! count, verifies the results are **bit-identical** across all of them,
//! and reports the speedup relative to the first listed count. Each row is
//! the best of `--repeat` runs (default 3), which filters scheduler noise;
//! speedup is only meaningful on a host with at least as many cores as the
//! largest thread count.

use std::process::ExitCode;
use std::time::Instant;

use varitune_bench::trace::run_traced;
use varitune_libchar::{generate_mc_libraries_threaded, generate_nominal, GenerateConfig};
use varitune_variation::mc::{simulate_path_threaded, PathCell, VariationMode};
use varitune_variation::ProcessCorner;

const DEFAULT_THREADS: [usize; 3] = [1, 2, 4];

fn main() -> ExitCode {
    let mut libraries = 24usize;
    let mut samples = 200_000usize;
    let mut repeat = 3usize;
    let mut threads: Vec<usize> = DEFAULT_THREADS.to_vec();
    let mut trace: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--libraries" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => libraries = n,
                _ => return usage("--libraries expects a positive integer"),
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => samples = n,
                _ => return usage("--samples expects a positive integer"),
            },
            "--threads" => match it.next().map(parse_thread_list) {
                Some(Some(list)) => threads = list,
                _ => return usage("--threads expects a comma-separated list like 1,2,4"),
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => repeat = n,
                _ => return usage("--repeat expects a positive integer"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p),
                None => return usage("--trace expects a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: mc_harness [--libraries N] [--samples N] [--threads N,N,...] \
                     [--repeat N] [--trace PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if threads.is_empty() || threads.contains(&0) {
        return usage("--threads entries must be explicit positive counts");
    }

    run_traced(trace.as_deref(), || {
        run(libraries, samples, repeat, &threads)
    })
}

fn run(libraries: usize, samples: usize, repeat: usize, threads: &[usize]) -> ExitCode {
    println!("Monte-Carlo micro-harness (std::time::Instant, offline)");
    println!(
        "characterization: {libraries} MC libraries; path MC: {samples} samples; \
         threads: {threads:?}; best of {repeat}"
    );

    let cfg = GenerateConfig::full();
    let nominal = generate_nominal(&cfg);
    // Warm-up: touch the whole characterization path once so first-run
    // effects (page faults, lazy init) do not bias the 1-thread baseline.
    let _ = generate_mc_libraries_threaded(&nominal, &cfg, 2, 1, 1);

    println!("\n[characterization MC] {libraries} perturbed libraries");
    let char_span = varitune_trace::span!("mc_harness.characterization");
    let mut char_base = None;
    let mut reference = None;
    for &t in threads {
        let mut dt = f64::INFINITY;
        for _ in 0..repeat {
            let t0 = Instant::now();
            let libs = generate_mc_libraries_threaded(&nominal, &cfg, libraries, 7, t);
            dt = dt.min(t0.elapsed().as_secs_f64());
            match &reference {
                None => reference = Some(libs),
                Some(r) => assert_eq!(r, &libs, "characterization MC must be bit-identical"),
            }
        }
        report_row(t, dt, &mut char_base);
    }
    drop(char_span);

    // A representative 12-cell path with mid-size relative sigmas.
    let cells: Vec<PathCell> = (0..12)
        .map(|i| {
            PathCell::new(
                0.08 + 0.01 * f64::from(i % 5),
                0.04 + 0.005 * f64::from(i % 3),
            )
        })
        .collect();
    println!(
        "\n[path MC] {} cells, global+local, slow corner",
        cells.len()
    );
    let path_span = varitune_trace::span!("mc_harness.path_mc");
    let mut path_base = None;
    let mut path_ref = None;
    for &t in threads {
        let mut dt = f64::INFINITY;
        for _ in 0..repeat {
            let t0 = Instant::now();
            let r = simulate_path_threaded(
                &cells,
                ProcessCorner::Slow,
                VariationMode::GlobalAndLocal,
                samples,
                11,
                t,
            );
            dt = dt.min(t0.elapsed().as_secs_f64());
            match &path_ref {
                None => path_ref = Some(r),
                Some(reference) => assert_eq!(reference, &r, "path MC must be bit-identical"),
            }
        }
        report_row(t, dt, &mut path_base);
    }
    drop(path_span);

    println!("\nall thread counts produced bit-identical results");
    ExitCode::SUCCESS
}

fn parse_thread_list(s: String) -> Option<Vec<usize>> {
    s.split(',')
        .map(|p| p.trim().parse::<usize>().ok())
        .collect()
}

fn report_row(threads: usize, dt: f64, base: &mut Option<f64>) {
    let speedup = match base {
        None => {
            *base = Some(dt);
            1.0
        }
        Some(b) => *b / dt,
    };
    println!(
        "  {threads:>2} thread(s): {:>8.3} s  speedup {speedup:>5.2}x",
        dt
    );
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!(
        "usage: mc_harness [--libraries N] [--samples N] [--threads N,N,...] [--repeat N] \
         [--trace PATH]"
    );
    ExitCode::FAILURE
}
