//! Seeded corruption operators over Liberty text and netlists.
//!
//! Shared by the fault-injection harness (`fault_harness`), the parser
//! bench (`parse_harness`) and the differential parser tests: all three
//! need the *same* damaged corpora so that "the zero-copy parser matches
//! the classic parser on everything the fault harness throws at it" is a
//! meaningful statement.
//!
//! All randomness comes from the caller-provided
//! [`Xoshiro256PlusPlus`] state — no wall clock, no OS entropy — so any
//! artefact derived from these operators is bit-identical across reruns.

use varitune_netlist::{NetId, Netlist};
use varitune_variation::Xoshiro256PlusPlus;

/// Corruption operators over Liberty text, in scenario-rotation order.
pub const LIBERTY_OPS: &[&str] = &[
    "truncate",
    "unbalance-brace",
    "flip-char",
    "inject-nan",
    "inject-inf",
    "shuffle-axis",
    "delete-arc",
    "duplicate-cell",
    "insert-junk",
];

/// Corruption operators over netlists.
pub const NETLIST_OPS: &[&str] = &["dangling-port", "comb-cycle", "arity-break"];

/// Corruption operators over protocol frames (the `varitune-serve` wire
/// format: 4-byte big-endian length + UTF-8 JSON). Each renders an attack
/// the server must survive with at most one connection lost.
pub const FRAME_OPS: &[&str] = &[
    "truncate-length-prefix",
    "oversized-length",
    "invalid-utf8-payload",
    "mid-frame-disconnect",
];

fn pick(rng: &mut Xoshiro256PlusPlus, n: usize) -> usize {
    debug_assert!(n > 0);
    (rng.next_u64() % n as u64) as usize
}

/// Byte offsets of every occurrence of `needle` in `text`.
fn occurrences(text: &str, needle: &str) -> Vec<usize> {
    let mut at = 0;
    let mut found = Vec::new();
    while let Some(p) = text[at..].find(needle) {
        found.push(at + p);
        at += p + needle.len();
    }
    found
}

/// Extends a float literal starting at `start` over `[0-9.eE+-]`.
fn number_end(text: &str, start: usize) -> usize {
    text[start..]
        .find(|c: char| !matches!(c, '0'..='9' | '.' | 'e' | 'E' | '+' | '-'))
        .map_or(text.len(), |off| start + off)
}

/// Matches the `{ ... }` block whose `{` is at `open`, returning the byte
/// offset just past the closing `}`.
fn block_end(text: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Applies the named Liberty corruption operator to `text`.
///
/// # Panics
///
/// Panics on an operator name outside [`LIBERTY_OPS`] — callers iterate
/// that constant, so an unknown name is a harness bug.
pub fn corrupt_liberty(op: &str, text: &str, rng: &mut Xoshiro256PlusPlus) -> String {
    let mut s = text.to_string();
    match op {
        "truncate" => {
            // Cut somewhere in the back three quarters (writer output is
            // ASCII, so any byte offset is a char boundary).
            let cut = s.len() / 4 + pick(rng, s.len() - s.len() / 4);
            s.truncate(cut);
        }
        "unbalance-brace" => {
            let braces = occurrences(&s, "}");
            if !braces.is_empty() {
                s.remove(braces[pick(rng, braces.len())]);
            }
        }
        "flip-char" => {
            // Clobber one byte of a cell body with a shell-ish junk char.
            let pos = s.len() / 4 + pick(rng, s.len() / 2);
            s.replace_range(pos..=pos, "@");
        }
        "inject-nan" | "inject-inf" => {
            let repl = if op == "inject-nan" { "nan" } else { "inf" };
            let starts = occurrences(&s, "0.");
            if !starts.is_empty() {
                let at = starts[pick(rng, starts.len())];
                let end = number_end(&s, at);
                s.replace_range(at..end, repl);
            }
        }
        "shuffle-axis" => {
            // Swap the first two entries of one index_1 axis list.
            let axes = occurrences(&s, "index_1 (\"");
            if !axes.is_empty() {
                let open = axes[pick(rng, axes.len())] + "index_1 (\"".len();
                if let Some(close) = s[open..].find('"').map(|p| open + p) {
                    let list = s[open..close].to_string();
                    let parts: Vec<&str> = list.split(", ").collect();
                    if parts.len() >= 2 {
                        let mut swapped = parts.clone();
                        swapped.swap(0, 1);
                        s.replace_range(open..close, &swapped.join(", "));
                    }
                }
            }
        }
        "delete-arc" => {
            let arcs = occurrences(&s, "timing ()");
            if !arcs.is_empty() {
                let at = arcs[pick(rng, arcs.len())];
                if let Some(open) = s[at..].find('{').map(|p| at + p) {
                    if let Some(end) = block_end(&s, open) {
                        s.replace_range(at..end, "");
                    }
                }
            }
        }
        "duplicate-cell" => {
            let cells = occurrences(&s, "cell (");
            if !cells.is_empty() {
                let at = cells[pick(rng, cells.len())];
                if let Some(open) = s[at..].find('{').map(|p| at + p) {
                    if let Some(end) = block_end(&s, open) {
                        let dup = s[at..end].to_string();
                        s.insert_str(end, "\n  ");
                        s.insert_str(end + 3, &dup);
                    }
                }
            }
        }
        "insert-junk" => {
            let pos = pick(rng, s.len());
            s.insert_str(pos, " @#%$ ");
        }
        other => unreachable!("unknown liberty operator {other}"),
    }
    s
}

/// Renders `payload` as a corrupted wire frame: the bytes an attacking
/// client writes before hanging up. The server must answer with a
/// structured `bad_request` where the socket still works (oversized
/// length, invalid UTF-8) and must simply drop the connection on the
/// truncation operators — in every case without dying.
///
/// # Panics
///
/// Panics on an operator name outside [`FRAME_OPS`] — callers iterate
/// that constant, so an unknown name is a harness bug.
#[must_use]
pub fn corrupt_frame(op: &str, payload: &str, rng: &mut Xoshiro256PlusPlus) -> Vec<u8> {
    let header = (payload.len() as u32).to_be_bytes();
    match op {
        "truncate-length-prefix" => {
            // Only 1–3 of the 4 header bytes arrive before the disconnect.
            header[..1 + pick(rng, 3)].to_vec()
        }
        "oversized-length" => {
            // A hostile prefix beyond the frame cap, with junk behind it.
            // The server must reject it without allocating the claimed size.
            let claim =
                (varitune_serve::MAX_FRAME as u32).saturating_add(1 + pick(rng, 1 << 20) as u32);
            let mut out = claim.to_be_bytes().to_vec();
            out.extend_from_slice(b"@#%$");
            out
        }
        "invalid-utf8-payload" => {
            // Correct framing, but one payload byte is clobbered with 0xff
            // (never valid in UTF-8 at any position).
            let mut bytes = payload.as_bytes().to_vec();
            if bytes.is_empty() {
                bytes.push(b'x');
            }
            let at = pick(rng, bytes.len());
            bytes[at] = 0xff;
            let mut out = (bytes.len() as u32).to_be_bytes().to_vec();
            out.extend_from_slice(&bytes);
            out
        }
        "mid-frame-disconnect" => {
            // Correct header, partial payload, then hang up.
            let mut out = header.to_vec();
            out.extend_from_slice(&payload.as_bytes()[..pick(rng, payload.len().max(1))]);
            out
        }
        other => unreachable!("unknown frame operator {other}"),
    }
}

/// Applies the named netlist corruption operator to `nl` in place.
///
/// # Panics
///
/// Panics on an operator name outside [`NETLIST_OPS`].
pub fn corrupt_netlist(op: &str, nl: &mut Netlist, rng: &mut Xoshiro256PlusPlus) {
    match op {
        "dangling-port" => {
            let bogus = NetId(nl.nets.len() as u32 + 1 + pick(rng, 1000) as u32);
            if nl.primary_outputs.is_empty() {
                nl.primary_outputs.push(bogus);
            } else {
                let k = pick(rng, nl.primary_outputs.len());
                nl.primary_outputs[k] = bogus;
            }
        }
        "comb-cycle" => {
            // Feed some combinational gate its own output.
            let comb: Vec<usize> = (0..nl.gates.len())
                .filter(|&gi| {
                    let g = &nl.gates[gi];
                    !g.kind.is_sequential() && !g.inputs.is_empty() && !g.outputs.is_empty()
                })
                .collect();
            if !comb.is_empty() {
                let gi = comb[pick(rng, comb.len())];
                let out = nl.gates[gi].outputs[0];
                nl.gates[gi].inputs[0] = out;
            }
        }
        "arity-break" => {
            if !nl.gates.is_empty() {
                let gi = pick(rng, nl.gates.len());
                nl.gates[gi].inputs.clear();
            }
        }
        other => unreachable!("unknown netlist operator {other}"),
    }
}

/// The standard damaged-Liberty corpus: every operator in [`LIBERTY_OPS`]
/// applied `per_op` times to `pristine`, with the same `rng_from(seed,
/// "fault", i)` seed derivation the fault harness uses, yielding
/// `(operator, corrupted text)` pairs in deterministic order.
pub fn liberty_corpus(pristine: &str, seed: u64, per_op: usize) -> Vec<(&'static str, String)> {
    let mut corpus = Vec::with_capacity(LIBERTY_OPS.len() * per_op);
    for round in 0..per_op {
        for (k, op) in LIBERTY_OPS.iter().enumerate() {
            let i = (round * LIBERTY_OPS.len() + k) as u64;
            let mut rng = varitune_variation::rng::rng_from(seed, "fault", i);
            corpus.push((*op, corrupt_liberty(op, pristine, &mut rng)));
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_variation::rng::rng_from;

    fn pristine() -> String {
        let lib = varitune_libchar::generate_nominal(&varitune_libchar::GenerateConfig::full());
        varitune_liberty::write_library(&lib).expect("pristine library serializes")
    }

    #[test]
    fn operators_are_deterministic() {
        let text = pristine();
        for op in LIBERTY_OPS {
            let a = corrupt_liberty(op, &text, &mut rng_from(7, "fault", 3));
            let b = corrupt_liberty(op, &text, &mut rng_from(7, "fault", 3));
            assert_eq!(a, b, "operator {op} must be seed-deterministic");
        }
    }

    #[test]
    fn every_operator_changes_the_text() {
        let text = pristine();
        for op in LIBERTY_OPS {
            let damaged = corrupt_liberty(op, &text, &mut rng_from(7, "fault", 5));
            assert_ne!(damaged, text, "operator {op} left the text untouched");
        }
    }

    #[test]
    fn frame_operators_are_deterministic_and_each_breaks_the_frame() {
        let payload = "{\"kind\":\"ping\",\"id\":\"x\"}";
        for op in FRAME_OPS {
            let a = corrupt_frame(op, payload, &mut rng_from(7, "frame", 1));
            let b = corrupt_frame(op, payload, &mut rng_from(7, "frame", 1));
            assert_eq!(a, b, "operator {op} must be seed-deterministic");
            // None of them round-trips as a well-formed frame.
            let parsed = varitune_serve::read_frame(&mut &a[..]);
            assert!(
                !matches!(parsed, Ok(Some(_))),
                "operator {op} produced a readable frame"
            );
        }
        // Shape checks per operator.
        let trunc = corrupt_frame(
            "truncate-length-prefix",
            payload,
            &mut rng_from(7, "frame", 2),
        );
        assert!(trunc.len() < 4);
        let over = corrupt_frame("oversized-length", payload, &mut rng_from(7, "frame", 2));
        let claim = u32::from_be_bytes([over[0], over[1], over[2], over[3]]);
        assert!(claim as usize > varitune_serve::MAX_FRAME);
        let utf8 = corrupt_frame(
            "invalid-utf8-payload",
            payload,
            &mut rng_from(7, "frame", 2),
        );
        assert!(String::from_utf8(utf8[4..].to_vec()).is_err());
        let cut = corrupt_frame(
            "mid-frame-disconnect",
            payload,
            &mut rng_from(7, "frame", 2),
        );
        assert!(cut.len() < 4 + payload.len());
    }

    #[test]
    fn corpus_covers_all_operators_in_order() {
        let text = pristine();
        let corpus = liberty_corpus(&text, 7, 2);
        assert_eq!(corpus.len(), LIBERTY_OPS.len() * 2);
        for (k, (op, _)) in corpus.iter().enumerate() {
            assert_eq!(*op, LIBERTY_OPS[k % LIBERTY_OPS.len()]);
        }
    }
}
