//! Criterion benches for the timing engine: forward STA, backward required
//! times and per-endpoint worst-path extraction with statistical
//! convolution — the machinery behind Figs. 12–14 and eq. (11).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use varitune_core::flow::{Flow, FlowConfig};
use varitune_sta::paths::worst_paths;
use varitune_sta::{analyze, required_times, StaConfig};
use varitune_synth::{synthesize, LibraryConstraints, SynthConfig};

fn bench_timing(c: &mut Criterion) {
    let flow = Flow::prepare(FlowConfig::small_for_tests()).expect("flow");
    let result = synthesize(
        &flow.netlist,
        &flow.stat.mean,
        &LibraryConstraints::unconstrained(),
        &SynthConfig::with_clock_period(8.0),
    )
    .expect("synthesis");
    let design = &result.design;
    let cfg = StaConfig::with_clock_period(8.0);

    c.bench_function("sta_analyze_small_mcu", |b| {
        b.iter(|| analyze(black_box(design), &flow.stat.mean, &cfg))
    });

    let report = analyze(design, &flow.stat.mean, &cfg).expect("sta");
    c.bench_function("sta_required_times_small_mcu", |b| {
        b.iter(|| required_times(black_box(design), &flow.stat.mean, &report))
    });

    c.bench_function("worst_paths_with_statistics_small_mcu", |b| {
        b.iter(|| worst_paths(black_box(design), &flow.stat.mean, &flow.stat, &report, 0.0))
    });
}

criterion_group!(timing, bench_timing);
criterion_main!(timing);
