//! Criterion benches for the sign-off stages added beyond the paper's
//! scope: hold analysis, power estimation (blanket and simulated
//! activity), logic simulation, exclusion tuning, and the Verilog/SDF
//! writers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use varitune_core::flow::{Flow, FlowConfig};
use varitune_core::tune_by_exclusion;
use varitune_netlist::random_activity;
use varitune_sta::{
    analyze, analyze_hold, estimate_power, write_sdf, HoldConfig, PowerConfig, StaConfig,
};
use varitune_synth::{synthesize, write_verilog, LibraryConstraints, SynthConfig};

fn bench_signoff(c: &mut Criterion) {
    let flow = Flow::prepare(FlowConfig::small_for_tests()).expect("flow");
    let result = synthesize(
        &flow.netlist,
        &flow.stat.mean,
        &LibraryConstraints::unconstrained(),
        &SynthConfig::with_clock_period(8.0),
    )
    .expect("synthesis");
    let design = &result.design;
    let lib = &flow.stat.mean;
    let report = analyze(design, lib, &StaConfig::with_clock_period(8.0)).expect("sta");

    c.bench_function("hold_analysis_small_mcu", |b| {
        b.iter(|| analyze_hold(black_box(design), lib, &HoldConfig::default()))
    });

    let pcfg = PowerConfig::with_clock_period(8.0);
    c.bench_function("power_estimate_small_mcu", |b| {
        b.iter(|| estimate_power(black_box(design), lib, &report, &pcfg))
    });

    c.bench_function("logic_sim_64_cycles_small_mcu", |b| {
        b.iter(|| random_activity(black_box(&design.netlist), 64, 1))
    });

    c.bench_function("exclusion_tuning_small_library", |b| {
        b.iter(|| tune_by_exclusion(black_box(&flow.stat), 0.02))
    });

    c.bench_function("verilog_export_small_mcu", |b| {
        b.iter(|| write_verilog(black_box(design), lib))
    });

    c.bench_function("sdf_export_small_mcu", |b| {
        b.iter(|| write_sdf(black_box(design), lib, &report))
    });
}

criterion_group!(signoff, bench_signoff);
criterion_main!(signoff);
