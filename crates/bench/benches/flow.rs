//! Criterion benches for the end-to-end stages: Monte-Carlo library
//! generation, tuning (all five methods) and full constrained synthesis —
//! the costs behind Tables 1/3 and Figs. 8–11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use varitune_core::flow::{Flow, FlowConfig};
use varitune_core::{tune, TuningMethod, TuningParams};
use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig};
use varitune_synth::{synthesize, LibraryConstraints, SynthConfig};

fn bench_mc_generation(c: &mut Criterion) {
    let cfg = GenerateConfig::small_for_tests();
    let nominal = generate_nominal(&cfg);
    c.bench_function("mc_characterize_10_libraries_small", |b| {
        b.iter(|| generate_mc_libraries(black_box(&nominal), &cfg, 10, 3))
    });
}

fn bench_tuning_methods(c: &mut Criterion) {
    let flow = Flow::prepare(FlowConfig::small_for_tests()).expect("flow");
    let mut g = c.benchmark_group("tune_method");
    for method in TuningMethod::ALL {
        let params = TuningParams::table2_sweep(method)[1];
        g.bench_with_input(
            BenchmarkId::from_parameter(method),
            &(method, params),
            |b, &(m, p)| b.iter(|| tune(black_box(&flow.stat), m, p)),
        );
    }
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let flow = Flow::prepare(FlowConfig::small_for_tests()).expect("flow");
    let tuned = tune(
        &flow.stat,
        TuningMethod::SigmaCeiling,
        TuningParams::with_sigma_ceiling(0.02),
    );
    let mut g = c.benchmark_group("synthesize_small_mcu");
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| {
            synthesize(
                black_box(&flow.netlist),
                &flow.stat.mean,
                &LibraryConstraints::unconstrained(),
                &SynthConfig::with_clock_period(8.0),
            )
        })
    });
    g.bench_function("sigma_ceiling_constrained", |b| {
        b.iter(|| {
            synthesize(
                black_box(&flow.netlist),
                &flow.stat.mean,
                &tuned.constraints,
                &SynthConfig::with_clock_period(8.0),
            )
        })
    });
    g.finish();
}

criterion_group!(
    flow_benches,
    bench_mc_generation,
    bench_tuning_methods,
    bench_synthesis
);
criterion_main!(flow_benches);
