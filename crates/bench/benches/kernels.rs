//! Criterion benches for the tuning kernels: largest-rectangle extraction
//! (Algorithm 1 brute force vs summed-area), slope tables, bilinear
//! interpolation and statistical-library construction. These are the inner
//! loops behind Figs. 4–7 and the Stage-1/Stage-2 tuning passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use varitune_core::slope::{binarize, load_slope_table, slew_slope_table};
use varitune_core::{largest_rectangle, largest_rectangle_bruteforce};
use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig, StatLibrary};
use varitune_liberty::Lut;

fn checkerboardish(n: usize) -> Vec<Vec<bool>> {
    (0..n)
        .map(|i| (0..n).map(|j| (i * 7 + j * 3) % 5 != 0).collect())
        .collect()
}

fn bench_rectangle(c: &mut Criterion) {
    let mut g = c.benchmark_group("largest_rectangle");
    for n in [7usize, 12, 16] {
        let grid = checkerboardish(n);
        g.bench_with_input(BenchmarkId::new("summed_area", n), &grid, |b, grid| {
            b.iter(|| largest_rectangle(black_box(grid)))
        });
        g.bench_with_input(BenchmarkId::new("bruteforce_alg1", n), &grid, |b, grid| {
            b.iter(|| largest_rectangle_bruteforce(black_box(grid)))
        });
    }
    g.finish();
}

fn demo_lut() -> Lut {
    let slew: Vec<f64> = (0..7).map(|i| 0.01 * (i + 1) as f64).collect();
    let load: Vec<f64> = (0..7).map(|j| 0.002 * (j + 1) as f64).collect();
    let values = (0..7)
        .map(|i| (0..7).map(|j| 0.01 + 0.003 * (i * j) as f64).collect())
        .collect();
    Lut::new(slew, load, values)
}

fn bench_interpolation(c: &mut Criterion) {
    let lut = demo_lut();
    c.bench_function("bilinear_interpolate_7x7", |b| {
        b.iter(|| lut.interpolate(black_box(0.033), black_box(0.0071)))
    });
}

fn bench_slope_tables(c: &mut Criterion) {
    let lut = demo_lut();
    c.bench_function("slope_tables_and_binarize_7x7", |b| {
        b.iter(|| {
            let s = slew_slope_table(black_box(&lut));
            let l = load_slope_table(black_box(&lut));
            (binarize(&s, 0.01), binarize(&l, 0.01))
        })
    });
}

fn bench_statlib_build(c: &mut Criterion) {
    let cfg = GenerateConfig::small_for_tests();
    let nominal = generate_nominal(&cfg);
    let libs = generate_mc_libraries(&nominal, &cfg, 20, 11);
    c.bench_function("statlib_from_20_libraries_small", |b| {
        b.iter(|| StatLibrary::from_libraries(black_box(&libs)))
    });
}

criterion_group!(
    kernels,
    bench_rectangle,
    bench_interpolation,
    bench_slope_tables,
    bench_statlib_build
);
criterion_main!(kernels);
