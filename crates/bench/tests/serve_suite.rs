//! Frame-corruption survival: every operator in [`FRAME_OPS`] is thrown at
//! a live server, which must keep serving afterwards. Lives in `bench`
//! (not `serve`) because the operators are part of the shared corruption
//! vocabulary the fault harness uses.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, TcpStream};

use varitune_bench::corrupt::{corrupt_frame, FRAME_OPS};
use varitune_serve::{read_frame, Client, ServeConfig, Server};
use varitune_variation::rng::rng_from;

#[test]
fn server_survives_every_frame_corruption_with_structured_errors() {
    let server = Server::start(ServeConfig::for_tests()).expect("server starts");
    let addr = server.addr();
    let payload = "{\"kind\":\"ping\",\"id\":\"atk\"}";
    for (i, op) in FRAME_OPS.iter().enumerate() {
        let mut rng = rng_from(11, "frame", i as u64);
        let bytes = corrupt_frame(op, payload, &mut rng);
        let mut attacker = TcpStream::connect(addr).expect("attacker connects");
        attacker.write_all(&bytes).expect("attack bytes sent");
        let _ = attacker.shutdown(Shutdown::Write);
        // The server either answers a structured bad_request (when the
        // socket still works) or just drops the connection; read whatever
        // comes back until EOF.
        let mut answer = Vec::new();
        let _ = attacker.read_to_end(&mut answer);
        if !answer.is_empty() {
            let response = read_frame(&mut &answer[..])
                .expect("well-framed error answer")
                .expect("non-empty answer");
            assert_eq!(
                varitune_serve::protocol::response_error_code(&response).as_deref(),
                Some("bad_request"),
                "operator {op} answered {response}"
            );
        }
        // Only the attacking connection died: a fresh client still works.
        let mut client = Client::connect(addr).expect("healthy client connects");
        let pong = client.call(payload).expect("ping after attack");
        assert!(pong.contains("pong"), "after {op}: {pong}");
    }
    let stats = server.stats();
    assert_eq!(
        stats.protocol_errors,
        FRAME_OPS.len() as u64,
        "every operator counted as a protocol error"
    );
    let _ = server.shutdown();
}
