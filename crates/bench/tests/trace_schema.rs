//! Trace-schema contract: every bench binary's `--trace` output parses
//! back through [`varitune_trace::FlowTrace::from_json`], carries the
//! schema tag, round-trips to the identical byte string, and contains one
//! span per documented stage of that binary (the constants in
//! [`varitune_bench::trace::stages`]). Renaming a span without updating
//! the matching constant fails here.
//!
//! Each binary runs as a subprocess (`CARGO_BIN_EXE_*`) at its smallest
//! scale, so this suite stays offline and self-contained.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

use varitune_bench::trace::stages;
use varitune_trace::FlowTrace;

/// Runs `bin` with `args` plus `--trace <tmp>` and returns the parsed
/// trace. Panics (failing the test) on a non-zero exit or unparsable
/// trace, with the binary's stderr in the message.
fn traced_run(bin: &str, name: &str, args: &[&str]) -> FlowTrace {
    let dir = std::env::temp_dir();
    let trace_path: PathBuf =
        dir.join(format!("varitune_{name}_{}.trace.json", std::process::id()));
    let mut cmd = Command::new(bin);
    cmd.args(args)
        .arg("--trace")
        .arg(&trace_path)
        .current_dir(&dir);
    let output = cmd
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {name}: {e}"));
    assert!(
        output.status.success(),
        "{name} {args:?} failed: {}\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| panic!("{name} did not write {}: {e}", trace_path.display()));
    let _ = std::fs::remove_file(&trace_path);
    let trace =
        FlowTrace::from_json(&text).unwrap_or_else(|e| panic!("{name} trace does not parse: {e}"));
    // Round-trip fixed point: the renderer and parser agree exactly.
    assert_eq!(trace.to_json(), text, "{name} trace does not round-trip");
    trace
}

/// Every documented stage appears among the trace's span names.
fn assert_stages(name: &str, trace: &FlowTrace, expected: &[&str]) {
    let names: BTreeSet<&str> = trace.span_names().into_iter().collect();
    for stage in expected {
        assert!(
            names.contains(stage),
            "{name} trace is missing documented stage span `{stage}`; spans present: {names:?}"
        );
    }
}

#[test]
fn tune_harness_trace_matches_schema() {
    let out = std::env::temp_dir().join(format!("varitune_tune_{}.json", std::process::id()));
    let trace = traced_run(
        env!("CARGO_BIN_EXE_tune_harness"),
        "tune_harness",
        &["--smoke", "--out", out.to_str().expect("utf-8 tmp path")],
    );
    let _ = std::fs::remove_file(&out);
    assert_stages("tune_harness", &trace, stages::TUNE_HARNESS);
    // The sweep runs the full Table-2 grid: 5 methods x 4 values.
    assert_eq!(trace.counter("core.tune_calls"), 20);
    assert!(trace.counter("libchar.mc_trials") > 0);
}

#[test]
fn mc_harness_trace_matches_schema() {
    let trace = traced_run(
        env!("CARGO_BIN_EXE_mc_harness"),
        "mc_harness",
        &[
            "--libraries",
            "2",
            "--samples",
            "2000",
            "--threads",
            "1,2",
            "--repeat",
            "1",
        ],
    );
    assert_stages("mc_harness", &trace, stages::MC_HARNESS);
    assert!(trace.counter("variation.trials") > 0);
}

#[test]
fn sta_harness_trace_matches_schema() {
    let out = std::env::temp_dir().join(format!("varitune_sta_{}.json", std::process::id()));
    let trace = traced_run(
        env!("CARGO_BIN_EXE_sta_harness"),
        "sta_harness",
        &[
            "--smoke",
            "--edits",
            "30",
            "--repeat",
            "1",
            "--out",
            out.to_str().expect("utf-8 tmp path"),
        ],
    );
    let _ = std::fs::remove_file(&out);
    assert_stages("sta_harness", &trace, stages::STA_HARNESS);
    // 30 incremental edits plus the full re-propagations of the scaling
    // sweep all pass through the engine's update counter.
    assert!(trace.counter("sta.updates") >= 30);
    assert!(trace.counter("sta.graph_builds") > 0);
}

#[test]
fn ssta_harness_trace_matches_schema() {
    let out = std::env::temp_dir().join(format!("varitune_ssta_{}.json", std::process::id()));
    let trace = traced_run(
        env!("CARGO_BIN_EXE_ssta_harness"),
        "ssta_harness",
        &[
            "--smoke",
            "--trials",
            "300",
            "--threads",
            "1,2",
            "--repeat",
            "1",
            "--out",
            out.to_str().expect("utf-8 tmp path"),
        ],
    );
    let _ = std::fs::remove_file(&out);
    assert_stages("ssta_harness", &trace, stages::SSTA_HARNESS);
    // The statistical model covered every timing arc, the propagation ran
    // once per thread count (plus the rerun), and the oracle sampled.
    assert!(trace.counter("sta.ssta.arcs_modeled") > 0);
    assert!(trace.counter("sta.ssta.analyses") >= 3);
    assert!(trace.counter("sta.ssta.mc_trials") >= 300);
}

#[test]
fn fault_harness_trace_matches_schema() {
    let out = std::env::temp_dir().join(format!("varitune_fault_{}.json", std::process::id()));
    let trace = traced_run(
        env!("CARGO_BIN_EXE_fault_harness"),
        "fault_harness",
        &[
            "--ops",
            "4",
            "--seed",
            "7",
            "--out",
            out.to_str().expect("utf-8 tmp path"),
        ],
    );
    let _ = std::fs::remove_file(&out);
    assert_stages("fault_harness", &trace, stages::FAULT_HARNESS);
    // Every scenario re-parses the corrupted library through the
    // recovering parser under each strictness policy.
    assert!(trace.counter("liberty.recovering_parses") > 0);
}

#[test]
fn serve_harness_trace_matches_schema() {
    let out = std::env::temp_dir().join(format!("varitune_serve_{}.json", std::process::id()));
    let trace = traced_run(
        env!("CARGO_BIN_EXE_serve_harness"),
        "serve_harness",
        &["--smoke", "--out", out.to_str().expect("utf-8 tmp path")],
    );
    let _ = std::fs::remove_file(&out);
    assert_stages("serve_harness", &trace, stages::SERVE_HARNESS);
    // The mix's flow work runs inside *server worker* threads under
    // per-job recorders, so the harness capture must stay free of flow
    // spans — leaking them here would mean job isolation broke.
    let names = trace.span_names();
    assert!(
        !names.iter().any(|n| n.starts_with("flow.")),
        "server-side job spans leaked into the harness capture: {names:?}"
    );
}

#[test]
fn parse_harness_trace_matches_schema() {
    let out = std::env::temp_dir().join(format!("varitune_parse_{}.json", std::process::id()));
    let trace = traced_run(
        env!("CARGO_BIN_EXE_parse_harness"),
        "parse_harness",
        &["--smoke", "--out", out.to_str().expect("utf-8 tmp path")],
    );
    let _ = std::fs::remove_file(&out);
    assert_stages("parse_harness", &trace, stages::PARSE_HARNESS);
    // Benching plus the differential gate parse repeatedly through the
    // recovering entry points.
    assert!(trace.counter("liberty.recovering_parses") > 0);
}

#[test]
fn optimize_harness_trace_matches_schema() {
    let out = std::env::temp_dir().join(format!("varitune_optimize_{}.json", std::process::id()));
    let trace = traced_run(
        env!("CARGO_BIN_EXE_optimize_harness"),
        "optimize_harness",
        &[
            "--smoke",
            "--threads",
            "2",
            "--out",
            out.to_str().expect("utf-8 tmp path"),
        ],
    );
    let _ = std::fs::remove_file(&out);
    assert_stages("optimize_harness", &trace, stages::OPTIMIZE_HARNESS);
    // The paper grid routes all 20 Table-2 points through the trait (the
    // determinism rerun makes it 20 more per extra search, but tune runs
    // once per paper point plus once per paper-seeded genome per search).
    assert!(trace.counter("core.tune_calls") >= 20);
    // The searches evaluated genomes and produced non-empty fronts.
    assert!(trace.counter("optimize.evaluations") > 0);
    assert!(trace.counter("optimize.generations") > 0);
    assert!(trace.counter("optimize.front_size") > 0);
    // Worker-side flow runs record no spans: the only flow spans present
    // come from the paper grid on the orchestration thread.
    assert!(trace.counter("optimize.cache_hits") > 0);
}

#[test]
fn experiments_trace_matches_schema() {
    let trace = traced_run(
        env!("CARGO_BIN_EXE_experiments"),
        "experiments",
        &["--scale", "small", "tab1"],
    );
    // Context preparation alone runs the full prepare pipeline and the
    // min-period bisection's baseline syntheses, so all baseline flow
    // stages appear even for a table-only experiment id.
    assert_stages("experiments", &trace, stages::EXPERIMENTS);
    assert!(trace.counter("core.flows_prepared") > 0);
    assert!(trace.counter("synth.runs") > 0);
}
