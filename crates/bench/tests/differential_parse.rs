//! Differential gate: the zero-copy Liberty pipeline against the classic
//! one, at both the lexer and the parser layer.
//!
//! The zero-copy lexer reports byte offsets and borrows payloads; the
//! classic lexer tracks line/column eagerly and owns its strings. These
//! tests project both streams onto a common `line:col kind` rendering
//! (offsets resolved through [`LineMap`]) and require byte-for-byte
//! equality — over hand-picked lexical edge cases and over the seeded
//! fault-injection corpora. The parser-level tests then require the whole
//! recovering and strict pipelines to agree with classic on library
//! contents and rendered diagnostics at 1, 2 and 8 threads.

use varitune_bench::corrupt::liberty_corpus;
use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_liberty::linemap::LineMap;
use varitune_liberty::{
    fastlex, lexer, parse_library, parse_library_classic, parse_library_recovering_classic,
    parse_library_recovering_threads, write_library,
};

const THREADS: &[usize] = &[1, 2, 8];

/// Lexical edge cases, including the regressions this change fixed: a
/// stray backslash mid-line, leading-dot floats, CRLF endings, escaped
/// quotes, unterminated strings/comments and junk bytes.
const LEX_EDGE_CASES: &[&str] = &[
    "",
    "library (L) { }",
    "library (L) {\r\n  cap : .5;\r\n}",
    "a : .25; b : 0.5; c : 5.; d : .5e2; e : -.5;",
    "x : 1 \\\n+ 2;",
    "x : 1 \\ 2;",
    "path : \"a\\\"b\";",
    "s : \"multi \\\n line\";",
    "s : \"never closed",
    "/* never closed",
    "// line comment\nx : 1;\n/* block */ y : 2;",
    "weird @ bytes # here $",
    "n : nan; i : inf; j : infinity; k : Infinity;",
    "v (\"0.1, 0.2\", \"0.3, 0.4\");",
    "tab\t:\tvalue\t;",
];

/// Renders the classic token stream as `line:col kind` lines plus a
/// `problems:` section of `line:col message` lines.
fn classic_stream(input: &str) -> String {
    let (tokens, problems) = lexer::tokenize_recovering(input);
    render_stream(
        tokens.iter().map(|t| (t.line, t.column, t.kind.describe())),
        problems
            .iter()
            .map(|p| (p.line, p.column, p.message.clone())),
    )
}

/// Renders the zero-copy token stream in the same shape, resolving byte
/// offsets through a [`LineMap`] exactly as `fastparse` does when it
/// materializes diagnostics.
fn fast_stream(input: &str) -> String {
    let (tokens, problems) = fastlex::lex_recovering(input);
    let map = LineMap::new(input);
    render_stream(
        tokens.iter().map(|t| {
            let (line, column) = map.line_col(t.offset);
            (line, column, t.kind.describe())
        }),
        problems.iter().map(|(offset, message)| {
            let (line, column) = map.line_col(*offset);
            (line, column, message.clone())
        }),
    )
}

fn render_stream(
    tokens: impl Iterator<Item = (usize, usize, String)>,
    problems: impl Iterator<Item = (usize, usize, String)>,
) -> String {
    let mut s = String::new();
    for (line, column, what) in tokens {
        s.push_str(&format!("{line}:{column} {what}\n"));
    }
    s.push_str("problems:\n");
    for (line, column, message) in problems {
        s.push_str(&format!("{line}:{column} {message}\n"));
    }
    s
}

#[test]
fn lexer_matches_classic_on_edge_cases() {
    for input in LEX_EDGE_CASES {
        assert_eq!(
            fast_stream(input),
            classic_stream(input),
            "token stream diverges on {input:?}"
        );
    }
}

#[test]
fn lexer_matches_classic_over_fault_corpus() {
    let pristine = small_library_text();
    for (op, damaged) in liberty_corpus(&pristine, 7, 1) {
        assert_eq!(
            fast_stream(&damaged),
            classic_stream(&damaged),
            "token stream diverges on corruption op {op}"
        );
    }
}

/// Library + rendered diagnostics, the unit of parser-level comparison.
fn recovering_fingerprint(
    lib: &varitune_liberty::Library,
    diags: &[varitune_liberty::Diagnostic],
) -> String {
    let rendered: Vec<String> = diags.iter().map(ToString::to_string).collect();
    format!("{lib:?}\n{}", rendered.join("\n"))
}

#[test]
fn recovering_parser_matches_classic_over_fault_corpus() {
    let pristine = small_library_text();
    for (op, damaged) in liberty_corpus(&pristine, 7, 1) {
        let (want_lib, want_diags) = parse_library_recovering_classic(&damaged);
        let want = recovering_fingerprint(&want_lib, &want_diags);
        for &threads in THREADS {
            let (lib, diags) = parse_library_recovering_threads(&damaged, threads);
            assert_eq!(
                recovering_fingerprint(&lib, &diags),
                want,
                "recovering output diverges on op {op} at {threads} thread(s)"
            );
        }
    }
}

#[test]
fn strict_parser_matches_classic_over_fault_corpus() {
    let pristine = small_library_text();
    for (op, damaged) in liberty_corpus(&pristine, 7, 1) {
        let want = match parse_library_classic(&damaged) {
            Ok(lib) => format!("ok: {lib:?}"),
            Err(e) => format!("err: {e}"),
        };
        let got = match parse_library(&damaged) {
            Ok(lib) => format!("ok: {lib:?}"),
            Err(e) => format!("err: {e}"),
        };
        assert_eq!(got, want, "strict outcome diverges on op {op}");
    }
}

#[test]
fn clean_library_is_bit_identical_across_threads() {
    let pristine = small_library_text();
    let (base_lib, base_diags) = parse_library_recovering_threads(&pristine, THREADS[0]);
    assert!(base_diags.is_empty(), "pristine library should parse clean");
    let base = recovering_fingerprint(&base_lib, &base_diags);
    let base_text = write_library(&base_lib).expect("re-serialize");
    for &threads in &THREADS[1..] {
        let (lib, diags) = parse_library_recovering_threads(&pristine, threads);
        assert_eq!(
            recovering_fingerprint(&lib, &diags),
            base,
            "parse at {threads} threads diverges"
        );
        assert_eq!(
            write_library(&lib).expect("re-serialize"),
            base_text,
            "re-serialization at {threads} threads diverges"
        );
    }
}

fn small_library_text() -> String {
    let lib = generate_nominal(&GenerateConfig::small_for_tests());
    write_library(&lib).expect("generated library serializes")
}
