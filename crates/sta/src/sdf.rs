//! SDF (Standard Delay Format) export.
//!
//! Real flows back-annotate gate-level simulation with an SDF file holding
//! each instance's input-to-output path delays at its actual operating
//! point. This writer emits SDF 3.0 `IOPATH` entries using the same LUT
//! evaluations the STA performed: for every gate, every (input, output)
//! arc's rise and fall delay at (that input's propagated slew, the output's
//! load). Together with the Verilog writer this completes the classic
//! synthesis hand-off trio: netlist + library + delays.

use std::fmt::Write as _;

use varitune_liberty::Library;

use crate::graph::{StaError, TimingReport};
use crate::mapped::MappedDesign;

/// Renders the design's delays as SDF 3.0 text.
///
/// Instance and port names match the Verilog writer's sanitization (SDF and
/// the netlist must agree for annotation to apply).
///
/// # Errors
///
/// Returns [`StaError`] for unmapped cells, missing arcs, or failing table
/// evaluations, and [`StaError::MismatchedInput`] when `report` was built
/// for a different (smaller) design than the one being annotated.
pub fn write_sdf(
    design: &MappedDesign,
    lib: &Library,
    report: &TimingReport,
) -> Result<String, StaError> {
    let nl = &design.netlist;
    if report.nets.len() < nl.nets.len() {
        return Err(StaError::MismatchedInput {
            reason: format!(
                "timing report covers {} nets but the design has {}",
                report.nets.len(),
                nl.nets.len()
            ),
        });
    }
    let mut out = String::new();
    let _ = writeln!(out, "(DELAYFILE");
    let _ = writeln!(out, "  (SDFVERSION \"3.0\")");
    let _ = writeln!(out, "  (DESIGN \"{}\")", sanitize(&nl.name));
    let _ = writeln!(out, "  (TIMESCALE 1ns)");

    for (gi, g) in nl.gates.iter().enumerate() {
        let cell = design
            .cell_of(gi, lib)
            .ok_or_else(|| StaError::UnknownCell {
                gate: gi,
                name: design.cell_label(gi, lib),
            })?;
        let input_pin_names: Vec<&str> = cell.input_pins().map(|p| p.name.as_str()).collect();
        let mut iopaths = Vec::new();
        for (j, &outnet) in g.outputs.iter().enumerate() {
            let pin = cell.output_pins().nth(j).ok_or(StaError::MissingArc {
                gate: gi,
                cell: cell.name.clone(),
            })?;
            let load = report.nets[outnet.0 as usize].load;
            if g.kind.is_sequential() {
                // Clock-to-output arc; SDF conventionally names the edge.
                let arc = pin.timing.first().ok_or(StaError::MissingArc {
                    gate: gi,
                    cell: cell.name.clone(),
                })?;
                let slew = report.nets[outnet.0 as usize].crit_input_slew;
                let rise = table_delay(arc.cell_rise.as_ref(), slew, load)?;
                let fall = table_delay(arc.cell_fall.as_ref(), slew, load)?;
                iopaths.push(format!(
                    "      (IOPATH (posedge {}) {} {} {})",
                    arc.related_pin,
                    pin.name,
                    triple(rise.unwrap_or(0.0)),
                    triple(fall.unwrap_or(rise.unwrap_or(0.0)))
                ));
                continue;
            }
            for (k, &inp) in g.inputs.iter().enumerate() {
                let arc = pin
                    .timing
                    .iter()
                    .find(|a| a.related_pin == input_pin_names[k])
                    .ok_or(StaError::MissingArc {
                        gate: gi,
                        cell: cell.name.clone(),
                    })?;
                let slew = report.nets[inp.0 as usize].slew;
                let rise = table_delay(arc.cell_rise.as_ref(), slew, load)?;
                let fall = table_delay(arc.cell_fall.as_ref(), slew, load)?;
                iopaths.push(format!(
                    "      (IOPATH {} {} {} {})",
                    input_pin_names[k],
                    pin.name,
                    triple(rise.unwrap_or(0.0)),
                    triple(fall.unwrap_or(rise.unwrap_or(0.0)))
                ));
            }
        }
        let _ = writeln!(out, "  (CELL");
        let _ = writeln!(out, "    (CELLTYPE \"{}\")", cell.name);
        let _ = writeln!(out, "    (INSTANCE {})", sanitize(&g.name));
        let _ = writeln!(out, "    (DELAY (ABSOLUTE");
        for p in iopaths {
            let _ = writeln!(out, "{p}");
        }
        let _ = writeln!(out, "    ))");
        let _ = writeln!(out, "  )");
    }
    let _ = writeln!(out, ")");
    Ok(out)
}

fn table_delay(
    table: Option<&varitune_liberty::Lut>,
    slew: f64,
    load: f64,
) -> Result<Option<f64>, StaError> {
    match table {
        Some(t) => Ok(Some(t.interpolate(slew, load)?)),
        None => Ok(None),
    }
}

/// SDF min:typ:max triple; this flow reports one corner, so all three are
/// the typical value.
fn triple(v: f64) -> String {
    format!("({v:.4}:{v:.4}:{v:.4})")
}

/// Same identifier sanitization as the Verilog writer.
fn sanitize(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 2);
    for c in name.chars() {
        match c {
            '[' => s.push_str("_i"),
            ']' => {}
            c if c.is_ascii_alphanumeric() || c == '_' => s.push(c),
            _ => s.push_str("_x"),
        }
    }
    if s.starts_with(|c: char| c.is_ascii_digit()) {
        s.insert(0, 'n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{analyze, StaConfig};
    use crate::mapped::WireModel;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn demo() -> (MappedDesign, Library, TimingReport) {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let q = nl.add_net("q");
        nl.add_gate(GateKind::Nand, vec![a, b], vec![x]);
        nl.add_gate(GateKind::Dff, vec![x], vec![q]);
        nl.mark_output(q);
        let d =
            MappedDesign::from_names(nl, &["ND2_2", "DF_1"], &lib, WireModel::default()).unwrap();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        (d, lib, r)
    }

    #[test]
    fn sdf_has_header_and_cells() {
        let (d, lib, r) = demo();
        let sdf = write_sdf(&d, &lib, &r).unwrap();
        for needle in [
            "(DELAYFILE",
            "(SDFVERSION \"3.0\")",
            "(DESIGN \"demo\")",
            "(TIMESCALE 1ns)",
            "(CELLTYPE \"ND2_2\")",
            "(CELLTYPE \"DF_1\")",
            "(IOPATH A Z",
            "(IOPATH B Z",
            "(IOPATH (posedge CK) Q",
        ] {
            assert!(sdf.contains(needle), "missing `{needle}`:\n{sdf}");
        }
        // Balanced parens overall.
        let open = sdf.matches('(').count();
        let close = sdf.matches(')').count();
        assert_eq!(open, close);
    }

    #[test]
    fn iopath_delays_match_sta_operating_points() {
        let (d, lib, r) = demo();
        let sdf = write_sdf(&d, &lib, &r).unwrap();
        // Recompute the A->Z rise delay exactly as the writer should.
        let cell = lib.cell("ND2_2").unwrap();
        let arc = &cell.pin("Z").unwrap().timing[0];
        let load = r.nets[2].load;
        let slew = r.nets[0].slew;
        let rise = arc
            .cell_rise
            .as_ref()
            .unwrap()
            .interpolate(slew, load)
            .unwrap();
        assert!(
            sdf.contains(&format!("{rise:.4}")),
            "expected {rise:.4} in:\n{sdf}"
        );
    }

    #[test]
    fn every_gate_appears_once() {
        let (d, lib, r) = demo();
        let sdf = write_sdf(&d, &lib, &r).unwrap();
        assert_eq!(sdf.matches("(INSTANCE ").count(), d.netlist.gates.len());
    }
}
