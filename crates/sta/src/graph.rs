//! Arrival/slew propagation over the mapped design.
//!
//! The timing graph is the netlist itself: primary inputs and flip-flop
//! outputs launch, combinational gates propagate in topological order, and
//! flip-flop data inputs / primary outputs capture. Cell delays and output
//! transitions come from the library LUTs via bilinear interpolation at the
//! (input slew, output load) operating point, exactly as §V describes.

use std::error::Error;
use std::fmt;

use varitune_liberty::{InterpolateError, Library, TimingType};
use varitune_netlist::{NetId, ValidateNetlistError};

use crate::mapped::MappedDesign;

/// Analysis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StaConfig {
    /// Target clock period (ns).
    pub clock_period: f64,
    /// Clock uncertainty / guard band subtracted from the period (ns); the
    /// paper uses 300 ps on the 2.41 ns design.
    pub clock_uncertainty: f64,
    /// Transition assumed on primary inputs (ns).
    pub input_slew: f64,
    /// Transition of the (ideal) clock at flip-flop clock pins (ns).
    pub clock_slew: f64,
    /// Setup requirement of capturing flip-flops (ns).
    pub setup_time: f64,
}

impl StaConfig {
    /// Configuration with the given clock period and conventional defaults
    /// for everything else.
    pub fn with_clock_period(clock_period: f64) -> Self {
        Self {
            clock_period,
            clock_uncertainty: 0.0,
            input_slew: 0.05,
            clock_slew: 0.03,
            setup_time: 0.045,
        }
    }

    /// The effective period seen by endpoints:
    /// `clock_period - clock_uncertainty`.
    pub fn effective_period(&self) -> f64 {
        self.clock_period - self.clock_uncertainty
    }
}

impl Default for StaConfig {
    fn default() -> Self {
        Self::with_clock_period(2.41)
    }
}

/// Error from timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// The netlist failed structural validation.
    Netlist(ValidateNetlistError),
    /// A gate is mapped to a cell name absent from the library.
    UnknownCell {
        /// Gate index.
        gate: usize,
        /// The unresolved cell name.
        name: String,
    },
    /// The mapped cell has no timing arc for a needed (input, output) pair.
    MissingArc {
        /// Gate index.
        gate: usize,
        /// Cell name.
        cell: String,
    },
    /// LUT evaluation failed.
    Interpolate(InterpolateError),
    /// A gate's pin structure is inconsistent with its role in the design.
    MalformedGate {
        /// Gate index.
        gate: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A sign-off input (timing report, activity vector) does not belong
    /// to the design it was passed with.
    MismatchedInput {
        /// What was inconsistent.
        reason: String,
    },
    /// A caller-supplied statistical parameter (yield target, sample
    /// count, tolerance) is outside its valid domain. Statistical
    /// quantities are data, not invariants — they must never panic.
    InvalidParameter {
        /// Which parameter, and what its valid domain is.
        reason: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Netlist(e) => write!(f, "invalid netlist: {e}"),
            StaError::UnknownCell { gate, name } => {
                write!(f, "gate #{gate} mapped to unknown cell `{name}`")
            }
            StaError::MissingArc { gate, cell } => {
                write!(f, "gate #{gate} ({cell}) lacks a required timing arc")
            }
            StaError::Interpolate(e) => write!(f, "table evaluation failed: {e}"),
            StaError::MalformedGate { gate, reason } => {
                write!(f, "gate #{gate} is malformed: {reason}")
            }
            StaError::MismatchedInput { reason } => {
                write!(f, "sign-off input mismatch: {reason}")
            }
            StaError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::Netlist(e) => Some(e),
            StaError::Interpolate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateNetlistError> for StaError {
    fn from(e: ValidateNetlistError) -> Self {
        StaError::Netlist(e)
    }
}

impl From<InterpolateError> for StaError {
    fn from(e: InterpolateError) -> Self {
        StaError::Interpolate(e)
    }
}

/// Timing state of one net after propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetTiming {
    /// Worst arrival time at the net (ns); 0 for primary inputs.
    pub arrival: f64,
    /// Transition at the net (ns).
    pub slew: f64,
    /// Capacitive load on the net (pF).
    pub load: f64,
    /// Driving gate index (`None` for primary inputs).
    pub driver: Option<usize>,
    /// Output-pin position on the driver.
    pub out_pin: usize,
    /// Critical input position on the driver (`None` for launch points).
    pub crit_input: Option<usize>,
    /// Cell delay of the driver's critical arc at the operating point (ns).
    pub cell_delay: f64,
    /// Input slew that produced the critical arc delay (ns).
    pub crit_input_slew: f64,
}

impl NetTiming {
    pub(crate) fn unpropagated() -> Self {
        Self {
            arrival: f64::NEG_INFINITY,
            slew: 0.0,
            load: 0.0,
            driver: None,
            out_pin: 0,
            crit_input: None,
            cell_delay: 0.0,
            crit_input_slew: 0.0,
        }
    }
}

/// Kind of timing endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EndpointKind {
    /// Data input of a flip-flop (setup check).
    FlipFlopData {
        /// Index of the capturing flip-flop gate.
        gate: usize,
    },
    /// Primary output.
    PrimaryOutput,
}

/// One timing endpoint with its slack.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Endpoint {
    /// Captured net.
    pub net: NetId,
    /// Endpoint kind.
    pub kind: EndpointKind,
    /// Data arrival (ns).
    pub arrival: f64,
    /// Required time (ns).
    pub required: f64,
}

impl Endpoint {
    /// Slack = required − arrival.
    pub fn slack(&self) -> f64 {
        self.required - self.arrival
    }
}

/// Result of [`analyze`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingReport {
    /// Configuration the analysis ran with.
    pub config: StaConfig,
    /// Per-net timing state.
    pub nets: Vec<NetTiming>,
    /// All endpoints (one per flip-flop D input and per primary output).
    pub endpoints: Vec<Endpoint>,
}

impl TimingReport {
    /// Worst (smallest) slack across all endpoints; `+inf` if there are no
    /// endpoints.
    pub fn worst_slack(&self) -> f64 {
        self.endpoints
            .iter()
            .map(Endpoint::slack)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether every endpoint meets timing.
    pub fn meets_timing(&self) -> bool {
        self.worst_slack() >= 0.0
    }

    /// Endpoints sorted most-critical first. Uses [`f64::total_cmp`], so
    /// the order is deterministic even when slacks tie or are NaN.
    pub fn critical_endpoints(&self) -> Vec<&Endpoint> {
        let mut v: Vec<&Endpoint> = self.endpoints.iter().collect();
        v.sort_by(|a, b| a.slack().total_cmp(&b.slack()));
        v
    }
}

/// Runs static timing analysis of `design` against `lib`.
///
/// This is a full propagation through the incremental engine
/// ([`crate::engine::TimingGraph`]): the interned graph is built, every
/// gate is marked dirty once, and the dirty-cone machinery degenerates to
/// a complete levelized sweep. Results are bit-identical to what the
/// engine reports after any equivalent sequence of incremental edits.
///
/// # Errors
///
/// Returns [`StaError`] if the netlist is structurally invalid, a gate maps
/// to an unknown cell, a required timing arc is missing, or LUT evaluation
/// fails.
pub fn analyze(
    design: &MappedDesign,
    lib: &Library,
    config: &StaConfig,
) -> Result<TimingReport, StaError> {
    crate::engine::analyze_via_engine(design, lib, config)
}

/// Evaluates a flip-flop data pin's constraint arc (setup or hold) at
/// `(data_slew, clock_slew)`. Constraint tables index the clock slew on
/// the LUT's load axis. Returns `None` when the cell has no such arc.
pub(crate) fn constraint_of(
    cell: &varitune_liberty::Cell,
    kind: TimingType,
    data_slew: f64,
    clock_slew: f64,
) -> Option<f64> {
    let d_pin = cell
        .input_pins()
        .find(|p| p.timing.iter().any(|a| a.timing_type == kind))?;
    let arc = d_pin.timing.iter().find(|a| a.timing_type == kind)?;
    arc.worst_delay(data_slew, clock_slew).ok()
}

/// Backward required-time propagation: the latest time each net may switch
/// and still meet every downstream endpoint. Per-gate slack is then
/// `required[out] - arrival[out]`, which the synthesis optimizer uses for
/// area recovery.
///
/// Nets with no path to any endpoint get `+inf` (unconstrained).
///
/// # Errors
///
/// Returns [`StaError`] under the same conditions as [`analyze`].
pub fn required_times(
    design: &MappedDesign,
    lib: &Library,
    report: &TimingReport,
) -> Result<Vec<f64>, StaError> {
    let nl = &design.netlist;
    let mut req = vec![f64::INFINITY; nl.nets.len()];
    for ep in &report.endpoints {
        let r = &mut req[ep.net.0 as usize];
        *r = r.min(ep.required);
    }
    // Reverse topological order over combinational gates.
    let mut order = topo_order(nl)?;
    order.reverse();
    for gi in order {
        let g = &nl.gates[gi];
        let cell = design
            .cell_of(gi, lib)
            .ok_or_else(|| StaError::UnknownCell {
                gate: gi,
                name: design.cell_label(gi, lib),
            })?;
        let input_pin_names: Vec<&str> = cell.input_pins().map(|p| p.name.as_str()).collect();
        for (j, &out) in g.outputs.iter().enumerate() {
            let out_req = req[out.0 as usize];
            if !out_req.is_finite() {
                continue;
            }
            let pin = cell.output_pins().nth(j).ok_or(StaError::MissingArc {
                gate: gi,
                cell: cell.name.clone(),
            })?;
            let load = report.nets[out.0 as usize].load;
            for (k, &inp) in g.inputs.iter().enumerate() {
                let arc = pin
                    .timing
                    .iter()
                    .find(|a| a.related_pin == input_pin_names[k])
                    .ok_or(StaError::MissingArc {
                        gate: gi,
                        cell: cell.name.clone(),
                    })?;
                let delay = arc.worst_delay(report.nets[inp.0 as usize].slew, load)?;
                let r = &mut req[inp.0 as usize];
                *r = r.min(out_req - delay);
            }
        }
    }
    Ok(req)
}

/// Kahn topological sort of the combinational gates. The netlist was already
/// validated acyclic, so this cannot fail in practice; an inconsistency is
/// reported as a netlist error.
pub(crate) fn topo_order(nl: &varitune_netlist::Netlist) -> Result<Vec<usize>, StaError> {
    let driver = nl.driver_map();
    let is_comb = |gi: usize| !nl.gates[gi].kind.is_sequential();
    let mut indeg = vec![0usize; nl.gates.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nl.gates.len()];
    for (gi, g) in nl.gates.iter().enumerate() {
        if !is_comb(gi) {
            continue;
        }
        for &inp in &g.inputs {
            if let Some(&src) = driver.get(&inp) {
                if is_comb(src) {
                    indeg[gi] += 1;
                    succs[src].push(gi);
                }
            }
        }
    }
    let mut queue: Vec<usize> = (0..nl.gates.len())
        .filter(|&gi| is_comb(gi) && indeg[gi] == 0)
        .collect();
    let mut order = Vec::with_capacity(queue.len());
    while let Some(gi) = queue.pop() {
        order.push(gi);
        for &s in &succs[gi] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    let comb_count = (0..nl.gates.len()).filter(|&gi| is_comb(gi)).count();
    if order.len() != comb_count {
        return Err(StaError::Netlist(
            ValidateNetlistError::CombinationalCycle {
                net: "unknown".to_string(),
            },
        ));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapped::WireModel;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn lib() -> Library {
        generate_nominal(&GenerateConfig::small_for_tests())
    }

    /// inv chain: a -> inv -> inv -> ... -> out, all INV_2.
    fn chain(n: usize) -> MappedDesign {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for i in 0..n {
            let z = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        MappedDesign::from_names(nl, &vec!["INV_2"; n], &lib(), WireModel::default()).unwrap()
    }

    #[test]
    fn longer_chain_has_larger_arrival() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(10.0);
        let a3 = analyze(&chain(3), &lib, &cfg).unwrap();
        let a9 = analyze(&chain(9), &lib, &cfg).unwrap();
        let po3 = a3.endpoints.last().unwrap().arrival;
        let po9 = a9.endpoints.last().unwrap().arrival;
        assert!(po9 > po3 * 2.0, "{po9} vs {po3}");
    }

    #[test]
    fn slack_responds_to_clock_period() {
        let lib = lib();
        let d = chain(5);
        let fast = analyze(&d, &lib, &StaConfig::with_clock_period(0.01)).unwrap();
        let slow = analyze(&d, &lib, &StaConfig::with_clock_period(10.0)).unwrap();
        assert!(fast.worst_slack() < 0.0);
        assert!(slow.worst_slack() > 0.0);
        assert!(!fast.meets_timing());
        assert!(slow.meets_timing());
    }

    #[test]
    fn uncertainty_reduces_slack() {
        let lib = lib();
        let d = chain(5);
        let base = analyze(&d, &lib, &StaConfig::with_clock_period(2.0)).unwrap();
        let mut cfg = StaConfig::with_clock_period(2.0);
        cfg.clock_uncertainty = 0.3;
        let guarded = analyze(&d, &lib, &cfg).unwrap();
        assert!((base.worst_slack() - guarded.worst_slack() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn ff_to_ff_path_has_endpoints() {
        let lib = lib();
        let mut nl = Netlist::new("ff2ff");
        let d0 = nl.add_input("d0");
        let q0 = nl.add_net("q0");
        nl.add_gate(GateKind::Dff, vec![d0], vec![q0]);
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![q0], vec![x]);
        let q1 = nl.add_net("q1");
        nl.add_gate(GateKind::Dff, vec![x], vec![q1]);
        nl.mark_output(q1);
        let d =
            MappedDesign::from_names(nl, &["DF_1", "INV_2", "DF_1"], &lib, WireModel::default())
                .unwrap();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        // Endpoints: two FF D-inputs + one PO.
        assert_eq!(r.endpoints.len(), 3);
        // The FF->inv->FF endpoint arrival includes clk-to-q plus inverter.
        let ep = r
            .endpoints
            .iter()
            .find(|e| matches!(e.kind, EndpointKind::FlipFlopData { gate: 2 }))
            .unwrap();
        assert!(ep.arrival > 0.0);
        let q0t = r.nets[1]; // q0 launched by FF
        assert!(q0t.arrival > 0.0);
        assert_eq!(q0t.driver, Some(0));
    }

    #[test]
    fn unknown_cell_is_reported() {
        let lib = lib();
        let mut d = chain(2);
        d.cells[1] = varitune_liberty::CellId(u32::MAX);
        let err = analyze(&d, &lib, &StaConfig::default()).unwrap_err();
        assert!(matches!(err, StaError::UnknownCell { gate: 1, .. }));
    }

    #[test]
    fn invalid_netlist_is_reported() {
        let lib = lib();
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Nand, vec![a, y], vec![x]);
        nl.add_gate(GateKind::Inv, vec![x], vec![y]);
        let d =
            MappedDesign::from_names(nl, &["ND2_1", "INV_1"], &lib, WireModel::default()).unwrap();
        assert!(matches!(
            analyze(&d, &lib, &StaConfig::default()),
            Err(StaError::Netlist(_))
        ));
    }

    #[test]
    fn bigger_drive_on_heavy_load_is_faster() {
        let lib = lib();
        // a -> INV(X) -> 8 sink inverters; compare X=1 vs X=8.
        let build = |drive: &str| {
            let mut nl = Netlist::new("fan");
            let a = nl.add_input("a");
            let x = nl.add_net("x");
            nl.add_gate(GateKind::Inv, vec![a], vec![x]);
            let mut names = vec![drive.to_string()];
            for i in 0..8 {
                let z = nl.add_net(format!("z{i}"));
                nl.add_gate(GateKind::Inv, vec![x], vec![z]);
                nl.mark_output(z);
                names.push("INV_2".into());
            }
            MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap()
        };
        let cfg = StaConfig::with_clock_period(10.0);
        let r1 = analyze(&build("INV_1"), &lib, &cfg).unwrap();
        let r8 = analyze(&build("INV_8"), &lib, &cfg).unwrap();
        assert!(r8.worst_slack() > r1.worst_slack());
    }

    #[test]
    fn critical_endpoints_sorted() {
        let lib = lib();
        let r = analyze(&chain(4), &lib, &StaConfig::with_clock_period(1.0)).unwrap();
        let eps = r.critical_endpoints();
        for w in eps.windows(2) {
            assert!(w[0].slack() <= w[1].slack());
        }
    }

    #[test]
    fn required_times_bound_arrivals_on_critical_path() {
        let lib = lib();
        let d = chain(5);
        let cfg = StaConfig::with_clock_period(2.0);
        let r = analyze(&d, &lib, &cfg).unwrap();
        let req = required_times(&d, &lib, &r).unwrap();
        // On a single chain every net is on the only path, so
        // slack(net) = req - arr is constant and equals the endpoint slack.
        let ep = r.endpoints[0];
        let end_slack = ep.slack();
        for (i, (rq, nt)) in req.iter().zip(&r.nets).enumerate() {
            let s = rq - nt.arrival;
            assert!(
                (s - end_slack).abs() < 1e-9,
                "net {i}: slack {s} vs endpoint {end_slack}"
            );
        }
    }

    #[test]
    fn unconstrained_net_has_infinite_required() {
        let lib = lib();
        // A dangling gate output feeds nothing and is not a PO.
        let mut nl = Netlist::new("dangle");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let d = MappedDesign::from_names(nl, &["INV_1"], &lib, WireModel::default()).unwrap();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(1.0)).unwrap();
        let req = required_times(&d, &lib, &r).unwrap();
        assert_eq!(req[1], f64::INFINITY);
    }

    #[test]
    fn full_adder_outputs_time_separately() {
        let lib = generate_nominal(&GenerateConfig::full());
        let mut nl = Netlist::new("fa");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let s = nl.add_net("s");
        let co = nl.add_net("co");
        nl.add_gate(GateKind::FullAdder, vec![a, b, c], vec![s, co]);
        nl.mark_output(s);
        nl.mark_output(co);
        let d = MappedDesign::from_names(nl, &["AD2_2"], &lib, WireModel::default()).unwrap();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        let s_t = r.nets[3];
        let co_t = r.nets[4];
        assert!(s_t.arrival > co_t.arrival, "sum slower than carry");
        assert_eq!(s_t.out_pin, 0);
        assert_eq!(co_t.out_pin, 1);
    }
}
