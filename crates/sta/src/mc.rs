//! Monte-Carlo validation of extracted worst paths (Figs. 15–16 at design
//! scale).
//!
//! [`crate::paths`] attaches *analytic* statistical parameters to each
//! worst path (convolution, eqs. 5–11). This module closes the loop the
//! way the paper does in §VII: convert an extracted [`PathTiming`] into the
//! per-cell Monte-Carlo model of [`varitune_variation::mc`] and actually
//! sample it — per corner, with local-only or global+local variation — so
//! the analytic sigma can be validated against a simulated one.
//!
//! All sampling runs on the deterministic parallel engine: each
//! (path, trial) pair draws from its own derived seed stream, so results
//! are bit-identical for any thread count.

use varitune_libchar::StatLibrary;
use varitune_variation::mc::{simulate_path_threaded, McResult, PathCell, VariationMode};
use varitune_variation::parallel::run_trials;
use varitune_variation::rng::derive_seed;
use varitune_variation::ProcessCorner;

use crate::graph::StaError;
use crate::paths::PathTiming;

/// Converts an extracted worst path into the MC cell model: per-cell mean
/// and *relative* local sigma from the statistical library at the recorded
/// operating point of every cell.
///
/// # Errors
///
/// Propagates [`StaError`] if a cell's statistical tables cannot be
/// evaluated at its operating point.
pub fn mc_cells(path: &PathTiming, stat: &StatLibrary) -> Result<Vec<PathCell>, StaError> {
    path.cells
        .iter()
        .map(|c| {
            let (m, s) = match &c.related_pin {
                Some(rel) => stat.delay_stat_arc(&c.cell, &c.out_pin, rel, c.slew, c.load)?,
                None => stat.delay_stat(&c.cell, &c.out_pin, c.slew, c.load)?,
            };
            Ok(PathCell::new(m, if m > 0.0 { s / m } else { 0.0 }))
        })
        .collect()
}

/// One simulated path: the MC run plus the analytic parameters it
/// validates.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathMcResult {
    /// Index of the path in the input slice.
    pub path_index: usize,
    /// Analytic path mean from the convolution (ns).
    pub analytic_mean: f64,
    /// Analytic path sigma from the convolution (ns).
    pub analytic_sigma: f64,
    /// The Monte-Carlo run.
    pub mc: McResult,
}

/// Runs an `n`-sample Monte Carlo on every path in `paths`, parallelized
/// **across paths** over `threads` workers (`0` = all available cores).
///
/// Path `i` simulates with the seed `derive_seed(seed, "sta-path-mc", i)`,
/// so the result set is deterministic in `seed` and bit-identical for any
/// thread count.
///
/// # Errors
///
/// [`StaError::InvalidParameter`] if `n == 0` (a sample count is data,
/// not an invariant — it must not panic); otherwise propagates the first
/// [`StaError`] from [`mc_cells`]. Empty paths are skipped rather than
/// rejected, since flip-flop-only endpoints can legitimately produce
/// depth-0 paths.
pub fn simulate_worst_paths(
    paths: &[PathTiming],
    stat: &StatLibrary,
    corner: ProcessCorner,
    mode: VariationMode,
    n: usize,
    seed: u64,
    threads: usize,
) -> Result<Vec<PathMcResult>, StaError> {
    if n == 0 {
        return Err(StaError::InvalidParameter {
            reason: "Monte Carlo sample count must be at least 1, got 0".to_string(),
        });
    }
    // Table lookups are cheap and fallible: do them up front, sequentially,
    // so the parallel section is infallible.
    let mut jobs: Vec<(usize, Vec<PathCell>)> = Vec::new();
    for (i, p) in paths.iter().enumerate() {
        let cells = mc_cells(p, stat)?;
        if !cells.is_empty() {
            jobs.push((i, cells));
        }
    }
    let results = run_trials(jobs.len(), threads, |j| {
        let (path_index, cells) = &jobs[j];
        let path_seed = derive_seed(seed, "sta-path-mc", *path_index as u64);
        // Trials stay sequential inside one path; parallelism is across
        // paths, which is where the design-scale work is.
        simulate_path_threaded(cells, corner, mode, n, path_seed, 1)
    });
    Ok(jobs
        .iter()
        .zip(results)
        .map(|(&(path_index, _), mc)| PathMcResult {
            path_index,
            analytic_mean: paths[path_index].mean,
            analytic_sigma: paths[path_index].sigma,
            mc,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{analyze, StaConfig};
    use crate::mapped::{MappedDesign, WireModel};
    use crate::paths::worst_paths;
    use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig};
    use varitune_liberty::Library;
    use varitune_netlist::{GateKind, Netlist};

    fn fixtures() -> (Library, StatLibrary) {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let mc = generate_mc_libraries(&nominal, &cfg, 25, 7);
        let stat = StatLibrary::from_libraries(&mc).unwrap();
        (nominal, stat)
    }

    fn two_chain_design() -> MappedDesign {
        let mut nl = Netlist::new("two-chains");
        let a = nl.add_input("a");
        let mut prev = a;
        for i in 0..3 {
            let z = nl.add_net(format!("s{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        let b = nl.add_input("b");
        let mut prev = b;
        for i in 0..9 {
            let z = nl.add_net(format!("l{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        MappedDesign::from_names(nl, &["INV_2"; 12], &lib, WireModel::default()).unwrap()
    }

    fn fixture_paths() -> (StatLibrary, Vec<PathTiming>) {
        let (lib, stat) = fixtures();
        let d = two_chain_design();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(10.0)).unwrap();
        let (paths, _) = worst_paths(&d, &lib, &stat, &r, 0.0).unwrap();
        (stat, paths)
    }

    #[test]
    fn mc_validates_analytic_parameters() {
        let (stat, paths) = fixture_paths();
        let results = simulate_worst_paths(
            &paths,
            &stat,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            2000,
            11,
            0,
        )
        .unwrap();
        assert_eq!(results.len(), paths.len());
        for r in &results {
            // Simulated mean within 5 % of the analytic convolution mean,
            // simulated sigma within 25 % of the analytic RSS sigma.
            let dm = (r.mc.summary.mean - r.analytic_mean).abs() / r.analytic_mean;
            assert!(dm < 0.05, "path {}: mean off by {dm}", r.path_index);
            let ds = (r.mc.summary.std_dev - r.analytic_sigma).abs() / r.analytic_sigma;
            assert!(ds < 0.25, "path {}: sigma off by {ds}", r.path_index);
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let (stat, paths) = fixture_paths();
        let run = |threads| {
            simulate_worst_paths(
                &paths,
                &stat,
                ProcessCorner::Slow,
                VariationMode::GlobalAndLocal,
                300,
                5,
                threads,
            )
            .unwrap()
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn zero_samples_is_an_error_not_a_panic() {
        let (stat, paths) = fixture_paths();
        let err = simulate_worst_paths(
            &paths,
            &stat,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            0,
            1,
            1,
        )
        .unwrap_err();
        assert!(matches!(err, StaError::InvalidParameter { .. }), "{err}");
    }

    #[test]
    fn unknown_cell_is_an_error_not_a_panic() {
        let (stat, mut paths) = fixture_paths();
        paths[0].cells[0].cell = "NOT_A_CELL".to_string();
        let err = simulate_worst_paths(
            &paths,
            &stat,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            10,
            1,
            1,
        );
        assert!(err.is_err());
    }
}
