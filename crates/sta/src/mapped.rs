//! A mapped design: a generic netlist bound to concrete library cells.

use varitune_liberty::{Cell, Library};
use varitune_netlist::{NetId, Netlist};

/// Lumped wire-load model: every net contributes a base capacitance plus a
/// per-fanout increment (pF). This stands in for the pre-layout wire-load
/// tables a synthesis tool would use.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WireModel {
    /// Capacitance of any driven net (pF).
    pub base: f64,
    /// Additional capacitance per fanout sink (pF).
    pub per_fanout: f64,
}

impl Default for WireModel {
    fn default() -> Self {
        Self {
            base: 0.0006,
            per_fanout: 0.0005,
        }
    }
}

impl WireModel {
    /// Wire capacitance of a net with `fanout` sinks.
    pub fn wire_cap(&self, fanout: usize) -> f64 {
        if fanout == 0 {
            0.0
        } else {
            self.base + self.per_fanout * fanout as f64
        }
    }
}

/// A netlist with one library cell name assigned to every gate.
///
/// The binding is positional: gate input `k` connects to the cell's `k`-th
/// input pin (in library declaration order, data pins before the clock pin),
/// and gate output `j` to the cell's `j`-th output pin.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MappedDesign {
    /// The underlying generic netlist (buffering during optimization adds
    /// gates here and to `cell_names` in lockstep).
    pub netlist: Netlist,
    /// Library cell name per gate index.
    pub cell_names: Vec<String>,
    /// Wire-load model used for net capacitances.
    pub wire_model: WireModel,
}

impl MappedDesign {
    /// Creates a mapped design.
    ///
    /// # Panics
    ///
    /// Panics if `cell_names` does not have one entry per gate.
    pub fn new(netlist: Netlist, cell_names: Vec<String>, wire_model: WireModel) -> Self {
        assert_eq!(
            netlist.gates.len(),
            cell_names.len(),
            "one cell name per gate required"
        );
        Self {
            netlist,
            cell_names,
            wire_model,
        }
    }

    /// Resolves the library cell of gate `gi`.
    pub fn cell_of<'l>(&self, gi: usize, lib: &'l Library) -> Option<&'l Cell> {
        lib.cell(&self.cell_names[gi])
    }

    /// Total cell area of the design under `lib`.
    pub fn total_area(&self, lib: &Library) -> f64 {
        self.cell_names
            .iter()
            .map(|n| lib.cell(n).map_or(0.0, |c| c.area))
            .sum()
    }

    /// Capacitive load on every net: sink input-pin capacitances plus the
    /// wire model. Nets with no sinks have zero load.
    ///
    /// Unknown cell names contribute no pin capacitance (the analysis layer
    /// reports them as errors before loads matter).
    pub fn net_loads(&self, lib: &Library) -> Vec<f64> {
        let mut loads = vec![0.0f64; self.netlist.nets.len()];
        let mut fanouts = vec![0usize; self.netlist.nets.len()];
        for (gi, g) in self.netlist.gates.iter().enumerate() {
            let cell = self.cell_of(gi, lib);
            for (k, &inp) in g.inputs.iter().enumerate() {
                fanouts[inp.0 as usize] += 1;
                if let Some(c) = cell {
                    if let Some(pin) = c.input_pins().nth(k) {
                        loads[inp.0 as usize] += pin.capacitance;
                    }
                }
            }
        }
        for &po in &self.netlist.primary_outputs {
            fanouts[po.0 as usize] += 1;
        }
        for (i, l) in loads.iter_mut().enumerate() {
            *l += self.wire_model.wire_cap(fanouts[i]);
        }
        loads
    }

    /// Load on one net (recomputes all loads; use [`MappedDesign::net_loads`]
    /// in loops).
    pub fn net_load(&self, net: NetId, lib: &Library) -> f64 {
        self.net_loads(lib)[net.0 as usize]
    }

    /// Histogram of cell usage: `(cell name, instance count)` sorted by
    /// descending count — the paper's Fig. 9 data.
    pub fn cell_usage(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
        for n in &self.cell_names {
            *counts.entry(n.as_str()).or_default() += 1;
        }
        let mut v: Vec<(String, usize)> =
            counts.into_iter().map(|(k, c)| (k.to_string(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::GateKind;

    fn demo() -> (MappedDesign, Library) {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        nl.add_gate(GateKind::Inv, vec![x], vec![y]);
        nl.mark_output(y);
        let d = MappedDesign::new(
            nl,
            vec!["INV_1".into(), "INV_4".into()],
            WireModel::default(),
        );
        (d, lib)
    }

    #[test]
    fn area_sums_cell_areas() {
        let (d, lib) = demo();
        let expect = lib.cell("INV_1").unwrap().area + lib.cell("INV_4").unwrap().area;
        assert!((d.total_area(&lib) - expect).abs() < 1e-12);
    }

    #[test]
    fn loads_include_pin_and_wire() {
        let (d, lib) = demo();
        let loads = d.net_loads(&lib);
        // Net x drives INV_4's input: its pin cap plus wire cap for 1 sink.
        let pin = lib.cell("INV_4").unwrap().input_pins().next().unwrap().capacitance;
        let expect = pin + d.wire_model.wire_cap(1);
        assert!((loads[1] - expect).abs() < 1e-12, "{}", loads[1]);
        // Net y drives only the primary output: wire cap only.
        assert!((loads[2] - d.wire_model.wire_cap(1)).abs() < 1e-12);
    }

    #[test]
    fn zero_fanout_net_has_zero_load() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("z");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let d = MappedDesign::new(nl, vec!["INV_1".into()], WireModel::default());
        assert_eq!(d.net_loads(&lib)[1], 0.0);
    }

    #[test]
    fn cell_usage_sorted_by_count() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("u");
        let a = nl.add_input("a");
        let mut prev = a;
        for i in 0..5 {
            let n = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![n]);
            prev = n;
        }
        let names = vec![
            "INV_1".into(),
            "INV_1".into(),
            "INV_1".into(),
            "INV_2".into(),
            "INV_2".into(),
        ];
        let d = MappedDesign::new(nl, names, WireModel::default());
        let usage = d.cell_usage();
        assert_eq!(usage[0], ("INV_1".to_string(), 3));
        assert_eq!(usage[1], ("INV_2".to_string(), 2));
        let _ = lib; // silence unused in this test
    }

    #[test]
    #[should_panic(expected = "one cell name per gate")]
    fn mismatched_names_panic() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let _ = MappedDesign::new(nl, vec![], WireModel::default());
    }

    #[test]
    fn wire_model_shape() {
        let w = WireModel::default();
        assert_eq!(w.wire_cap(0), 0.0);
        assert!(w.wire_cap(4) > w.wire_cap(1));
    }
}
