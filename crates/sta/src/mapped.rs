//! A mapped design: a generic netlist bound to concrete library cells.

use std::fmt;

use varitune_liberty::{Cell, CellId, Library};
use varitune_netlist::{NetId, Netlist, NetlistView, SoaNetlist};

/// Lumped wire-load model: every net contributes a base capacitance plus a
/// per-fanout increment (pF). This stands in for the pre-layout wire-load
/// tables a synthesis tool would use.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WireModel {
    /// Capacitance of any driven net (pF).
    pub base: f64,
    /// Additional capacitance per fanout sink (pF).
    pub per_fanout: f64,
}

impl Default for WireModel {
    fn default() -> Self {
        Self {
            base: 0.0006,
            per_fanout: 0.0005,
        }
    }
}

impl WireModel {
    /// Wire capacitance of a net with `fanout` sinks.
    pub fn wire_cap(&self, fanout: usize) -> f64 {
        if fanout == 0 {
            0.0
        } else {
            self.base + self.per_fanout * fanout as f64
        }
    }
}

/// A netlist with one library cell bound to every gate.
///
/// The binding is positional: gate input `k` connects to the cell's `k`-th
/// input pin (in library declaration order, data pins before the clock pin),
/// and gate output `j` to the cell's `j`-th output pin. Cells are stored as
/// typed [`CellId`]s — indices into `Library::cells` — so every analysis
/// loop resolves cells by direct indexing, not name lookup. Ids are
/// positional and therefore portable across structurally identical
/// libraries (nominal, Monte-Carlo perturbations, the statistical
/// mean/sigma pair).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MappedDesign {
    /// The underlying generic netlist (buffering during optimization adds
    /// gates here and to `cells` in lockstep).
    pub netlist: Netlist,
    /// Library cell id per gate index.
    pub cells: Vec<CellId>,
    /// Wire-load model used for net capacitances.
    pub wire_model: WireModel,
}

/// A cell name that does not exist in the library, reported by
/// [`MappedDesign::from_names`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownCellName {
    /// Gate whose cell could not be resolved.
    pub gate: usize,
    /// The unresolvable name.
    pub name: String,
}

impl fmt::Display for UnknownCellName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate {} references unknown cell `{}`",
            self.gate, self.name
        )
    }
}

impl std::error::Error for UnknownCellName {}

impl MappedDesign {
    /// Creates a mapped design.
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not have one entry per gate.
    pub fn new(netlist: Netlist, cells: Vec<CellId>, wire_model: WireModel) -> Self {
        assert_eq!(
            netlist.gates.len(),
            cells.len(),
            "one cell id per gate required"
        );
        Self {
            netlist,
            cells,
            wire_model,
        }
    }

    /// Creates a mapped design from cell *names*, interning each against
    /// `lib` — the boundary constructor for hand-written designs and tests.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownCellName`] for the first name `lib` does not contain.
    ///
    /// # Panics
    ///
    /// Panics if `names` does not have one entry per gate.
    pub fn from_names<S: AsRef<str>>(
        netlist: Netlist,
        names: &[S],
        lib: &Library,
        wire_model: WireModel,
    ) -> Result<Self, UnknownCellName> {
        let cells = names
            .iter()
            .enumerate()
            .map(|(gi, n)| {
                lib.cell_id(n.as_ref()).ok_or_else(|| UnknownCellName {
                    gate: gi,
                    name: n.as_ref().to_string(),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::new(netlist, cells, wire_model))
    }

    /// Resolves the library cell of gate `gi` (`None` when the id is out of
    /// range for `lib`).
    pub fn cell_of<'l>(&self, gi: usize, lib: &'l Library) -> Option<&'l Cell> {
        lib.cells.get(self.cells[gi].index())
    }

    /// Display label of gate `gi`'s cell: its library name, or `cell#<id>`
    /// when the id does not resolve in `lib`.
    pub fn cell_label(&self, gi: usize, lib: &Library) -> String {
        match self.cell_of(gi, lib) {
            Some(c) => c.name.clone(),
            None => format!("cell#{}", self.cells[gi].0),
        }
    }

    /// Total cell area of the design under `lib`.
    pub fn total_area(&self, lib: &Library) -> f64 {
        self.cells
            .iter()
            .map(|id| lib.cells.get(id.index()).map_or(0.0, |c| c.area))
            .sum()
    }

    /// Capacitive load on every net: sink input-pin capacitances plus the
    /// wire model. Nets with no sinks have zero load.
    ///
    /// Unknown cell names contribute no pin capacitance (the analysis layer
    /// reports them as errors before loads matter).
    pub fn net_loads(&self, lib: &Library) -> Vec<f64> {
        net_loads_view(&self.netlist, &self.cells, self.wire_model, lib)
    }

    /// Load on one net (recomputes all loads; use [`MappedDesign::net_loads`]
    /// in loops).
    pub fn net_load(&self, net: NetId, lib: &Library) -> f64 {
        self.net_loads(lib)[net.0 as usize]
    }

    /// Histogram of cell usage: `(cell name, instance count)` sorted by
    /// descending count — the paper's Fig. 9 data. Counting runs over ids;
    /// names are materialized once per distinct cell at this report
    /// boundary.
    pub fn cell_usage(&self, lib: &Library) -> Vec<(String, usize)> {
        let mut counts = vec![0usize; lib.cells.len()];
        for id in &self.cells {
            if let Some(c) = counts.get_mut(id.index()) {
                *c += 1;
            }
        }
        let mut v: Vec<(String, usize)> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (lib.cells[i].name.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

/// [`MappedDesign::net_loads`] over any [`NetlistView`]: the exact same
/// accumulation order (per-gate pin caps in gate order, then wire caps in
/// ascending net order), so loads are bit-identical across the AoS and
/// SoA representations of one design.
pub(crate) fn net_loads_view<V: NetlistView>(
    nl: &V,
    cells: &[CellId],
    wire_model: WireModel,
    lib: &Library,
) -> Vec<f64> {
    debug_assert_eq!(cells.len(), nl.gate_count(), "one cell id per gate");
    let mut loads = vec![0.0f64; nl.net_count()];
    let mut fanouts = vec![0usize; nl.net_count()];
    for (gi, cell_id) in cells.iter().enumerate() {
        let cell = lib.cells.get(cell_id.index());
        for (k, &inp) in nl.gate_inputs(gi).iter().enumerate() {
            fanouts[inp.0 as usize] += 1;
            if let Some(c) = cell {
                if let Some(pin) = c.input_pins().nth(k) {
                    loads[inp.0 as usize] += pin.capacitance;
                }
            }
        }
    }
    for &po in nl.primary_outputs() {
        fanouts[po.0 as usize] += 1;
    }
    for (i, l) in loads.iter_mut().enumerate() {
        *l += wire_model.wire_cap(fanouts[i]);
    }
    loads
}

/// A SoA netlist bound to concrete library cells — the million-gate
/// counterpart of [`MappedDesign`] (same positional pin-binding
/// contract), consumed by [`crate::engine::TimingGraph::new_soa`].
#[derive(Debug, Clone, PartialEq)]
pub struct SoaDesign {
    /// The underlying arena/SoA netlist.
    pub netlist: SoaNetlist,
    /// Library cell id per gate index.
    pub cells: Vec<CellId>,
    /// Wire-load model used for net capacitances.
    pub wire_model: WireModel,
}

impl SoaDesign {
    /// Creates a mapped SoA design.
    ///
    /// # Panics
    ///
    /// Panics if `cells` does not have one entry per gate.
    pub fn new(netlist: SoaNetlist, cells: Vec<CellId>, wire_model: WireModel) -> Self {
        assert_eq!(
            netlist.gate_count(),
            cells.len(),
            "one cell id per gate required"
        );
        Self {
            netlist,
            cells,
            wire_model,
        }
    }

    /// Total cell area of the design under `lib`.
    pub fn total_area(&self, lib: &Library) -> f64 {
        self.cells
            .iter()
            .map(|id| lib.cells.get(id.index()).map_or(0.0, |c| c.area))
            .sum()
    }

    /// Capacitive load on every net — bit-identical to
    /// [`MappedDesign::net_loads`] on the AoS form of the same design.
    pub fn net_loads(&self, lib: &Library) -> Vec<f64> {
        net_loads_view(&self.netlist, &self.cells, self.wire_model, lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::GateKind;

    fn demo() -> (MappedDesign, Library) {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        nl.add_gate(GateKind::Inv, vec![x], vec![y]);
        nl.mark_output(y);
        let d =
            MappedDesign::from_names(nl, &["INV_1", "INV_4"], &lib, WireModel::default()).unwrap();
        (d, lib)
    }

    #[test]
    fn area_sums_cell_areas() {
        let (d, lib) = demo();
        let expect = lib.cell("INV_1").unwrap().area + lib.cell("INV_4").unwrap().area;
        assert!((d.total_area(&lib) - expect).abs() < 1e-12);
    }

    #[test]
    fn loads_include_pin_and_wire() {
        let (d, lib) = demo();
        let loads = d.net_loads(&lib);
        // Net x drives INV_4's input: its pin cap plus wire cap for 1 sink.
        let pin = lib
            .cell("INV_4")
            .unwrap()
            .input_pins()
            .next()
            .unwrap()
            .capacitance;
        let expect = pin + d.wire_model.wire_cap(1);
        assert!((loads[1] - expect).abs() < 1e-12, "{}", loads[1]);
        // Net y drives only the primary output: wire cap only.
        assert!((loads[2] - d.wire_model.wire_cap(1)).abs() < 1e-12);
    }

    #[test]
    fn zero_fanout_net_has_zero_load() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("z");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let d = MappedDesign::from_names(nl, &["INV_1"], &lib, WireModel::default()).unwrap();
        assert_eq!(d.net_loads(&lib)[1], 0.0);
    }

    #[test]
    fn cell_usage_sorted_by_count() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("u");
        let a = nl.add_input("a");
        let mut prev = a;
        for i in 0..5 {
            let n = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![n]);
            prev = n;
        }
        let names = ["INV_1", "INV_1", "INV_1", "INV_2", "INV_2"];
        let d = MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap();
        let usage = d.cell_usage(&lib);
        assert_eq!(usage[0], ("INV_1".to_string(), 3));
        assert_eq!(usage[1], ("INV_2".to_string(), 2));
    }

    #[test]
    #[should_panic(expected = "one cell id per gate")]
    fn mismatched_ids_panic() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let _ = MappedDesign::new(nl, vec![], WireModel::default());
    }

    #[test]
    fn from_names_reports_unknown_cells() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let err =
            MappedDesign::from_names(nl, &["NOPE_9"], &lib, WireModel::default()).unwrap_err();
        assert_eq!(
            err,
            UnknownCellName {
                gate: 0,
                name: "NOPE_9".into()
            }
        );
    }

    #[test]
    fn labels_fall_back_for_unresolvable_ids() {
        let (mut d, lib) = demo();
        assert_eq!(d.cell_label(0, &lib), "INV_1");
        d.cells[0] = CellId(u32::MAX);
        assert_eq!(d.cell_label(0, &lib), format!("cell#{}", u32::MAX));
        assert!(d.cell_of(0, &lib).is_none());
    }

    #[test]
    fn wire_model_shape() {
        let w = WireModel::default();
        assert_eq!(w.wire_cap(0), 0.0);
        assert!(w.wire_cap(4) > w.wire_cap(1));
    }
}
