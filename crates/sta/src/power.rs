//! Average-power estimation of a mapped design.
//!
//! The paper focuses on timing but notes (§II–III) that the library tables
//! also carry power and that the tuning method extends to transition power.
//! This module provides the consumer side: a standard activity-based power
//! estimate over the mapped design, using the internal-power tables at each
//! gate's propagated operating point:
//!
//! * **internal** — per-event energy from the library's `internal_power`
//!   tables, at the gate's (input slew, output load),
//! * **switching** — `½·C_load·V²` per output event, charged to the driving
//!   gate,
//! * **leakage** — the cells' static `cell_leakage_power`.

use varitune_liberty::Library;

use crate::graph::{StaError, TimingReport};
use crate::mapped::MappedDesign;

/// Power-analysis knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerConfig {
    /// Average switching activity: output events per clock cycle per net.
    pub activity: f64,
    /// Clock period (ns); the clock frequency is `1/period` GHz.
    pub clock_period: f64,
    /// Supply voltage (V).
    pub voltage: f64,
}

impl PowerConfig {
    /// Conventional defaults (activity 0.1) at the given period.
    pub fn with_clock_period(clock_period: f64) -> Self {
        Self {
            activity: 0.1,
            clock_period,
            voltage: 1.1,
        }
    }
}

/// Power breakdown in mW.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerReport {
    /// Internal (cell) switching power.
    pub internal: f64,
    /// Net-charging switching power.
    pub switching: f64,
    /// Static leakage power.
    pub leakage: f64,
}

impl PowerReport {
    /// Total power (mW).
    pub fn total(&self) -> f64 {
        self.internal + self.switching + self.leakage
    }
}

/// Estimates average power of `design` using the operating points recorded
/// in `report` and one blanket activity for every net.
///
/// # Errors
///
/// Returns [`StaError`] for unmapped cells or failing table lookups. Gates
/// whose cells carry no power tables contribute only switching and leakage.
pub fn estimate_power(
    design: &MappedDesign,
    lib: &Library,
    report: &TimingReport,
    config: &PowerConfig,
) -> Result<PowerReport, StaError> {
    estimate(design, lib, report, config, None)
}

/// Like [`estimate_power`], but with a **measured** per-net activity vector
/// (toggles per cycle, indexed by net id) — typically from
/// `varitune_netlist::random_activity` run on the mapped netlist. The
/// `config.activity` constant is ignored.
///
/// # Errors
///
/// Returns [`StaError`] as [`estimate_power`] does, and
/// [`StaError::MismatchedInput`] when `activity` is shorter than the net
/// count (one value per net is required).
pub fn estimate_power_with_activity(
    design: &MappedDesign,
    lib: &Library,
    report: &TimingReport,
    config: &PowerConfig,
    activity: &[f64],
) -> Result<PowerReport, StaError> {
    if activity.len() < design.netlist.nets.len() {
        return Err(StaError::MismatchedInput {
            reason: format!(
                "activity vector covers {} nets but the design has {}",
                activity.len(),
                design.netlist.nets.len()
            ),
        });
    }
    estimate(design, lib, report, config, Some(activity))
}

fn estimate(
    design: &MappedDesign,
    lib: &Library,
    report: &TimingReport,
    config: &PowerConfig,
    activity: Option<&[f64]>,
) -> Result<PowerReport, StaError> {
    if report.nets.len() < design.netlist.nets.len() {
        return Err(StaError::MismatchedInput {
            reason: format!(
                "timing report covers {} nets but the design has {}",
                report.nets.len(),
                design.netlist.nets.len()
            ),
        });
    }
    let freq_ghz = 1.0 / config.clock_period;
    let v2 = config.voltage * config.voltage;

    let mut internal = 0.0;
    let mut switching = 0.0;
    let mut leakage = 0.0;
    for (gi, g) in design.netlist.gates.iter().enumerate() {
        let cell = design
            .cell_of(gi, lib)
            .ok_or_else(|| StaError::UnknownCell {
                gate: gi,
                name: design.cell_label(gi, lib),
            })?;
        // nW -> mW.
        leakage += cell.leakage_power * 1e-6;
        for (j, &out) in g.outputs.iter().enumerate() {
            let t = report.nets[out.0 as usize];
            let net_activity = activity.map_or(config.activity, |a| a[out.0 as usize]);
            let events_per_ns = net_activity * freq_ghz;
            // pJ/event * events/ns = mW.
            switching += 0.5 * t.load * v2 * events_per_ns;
            if let Some(pin) = cell.output_pins().nth(j) {
                for group in &pin.internal_power {
                    if group.rise_power.is_none() && group.fall_power.is_none() {
                        continue;
                    }
                    let e = group.average_energy(t.crit_input_slew, t.load)?;
                    // Activity is shared across the pin's power groups so a
                    // multi-input cell is not double-counted.
                    internal += e * events_per_ns / pin.internal_power.len().max(1) as f64;
                }
            }
        }
    }
    Ok(PowerReport {
        internal,
        switching,
        leakage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{analyze, StaConfig};
    use crate::mapped::WireModel;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn chain(n: usize, cell: &str) -> MappedDesign {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for i in 0..n {
            let z = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        MappedDesign::from_names(nl, &vec![cell; n], &lib, WireModel::default()).unwrap()
    }

    fn power_of(design: &MappedDesign, period: f64) -> PowerReport {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let report = analyze(design, &lib, &StaConfig::with_clock_period(period)).unwrap();
        estimate_power(
            design,
            &lib,
            &report,
            &PowerConfig::with_clock_period(period),
        )
        .unwrap()
    }

    #[test]
    fn all_components_are_positive() {
        let p = power_of(&chain(6, "INV_2"), 5.0);
        assert!(p.internal > 0.0);
        assert!(p.switching > 0.0);
        assert!(p.leakage > 0.0);
        assert!((p.total() - (p.internal + p.switching + p.leakage)).abs() < 1e-15);
    }

    #[test]
    fn more_gates_burn_more_power() {
        let short = power_of(&chain(4, "INV_2"), 5.0);
        let long = power_of(&chain(16, "INV_2"), 5.0);
        assert!(long.total() > 2.0 * short.total());
    }

    #[test]
    fn faster_clock_burns_more_dynamic_power() {
        let slow = power_of(&chain(8, "INV_2"), 10.0);
        let fast = power_of(&chain(8, "INV_2"), 2.5);
        assert!(fast.internal > slow.internal);
        assert!(fast.switching > slow.switching);
        // Leakage is frequency independent.
        assert!((fast.leakage - slow.leakage).abs() < 1e-12);
    }

    #[test]
    fn bigger_cells_leak_and_switch_more() {
        let small = power_of(&chain(8, "INV_1"), 5.0);
        let big = power_of(&chain(8, "INV_8"), 5.0);
        assert!(big.leakage > small.leakage);
        assert!(big.total() > small.total());
    }

    #[test]
    fn measured_activity_replaces_the_blanket_constant() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let d = chain(6, "INV_2");
        let report = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        let cfg = PowerConfig::with_clock_period(5.0);
        // An idle design (all nets quiet) burns only leakage.
        let quiet = vec![0.0; d.netlist.nets.len()];
        let p = estimate_power_with_activity(&d, &lib, &report, &cfg, &quiet).unwrap();
        assert_eq!(p.internal, 0.0);
        assert_eq!(p.switching, 0.0);
        assert!(p.leakage > 0.0);
        // Full toggling beats the 0.1 blanket constant.
        let busy = vec![1.0; d.netlist.nets.len()];
        let pb = estimate_power_with_activity(&d, &lib, &report, &cfg, &busy).unwrap();
        let blanket = estimate_power(&d, &lib, &report, &cfg).unwrap();
        assert!(pb.total() > blanket.total());
    }

    #[test]
    fn simulated_activity_feeds_power_end_to_end() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let d = chain(6, "INV_2");
        let report = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        let cfg = PowerConfig::with_clock_period(5.0);
        let activity =
            varitune_netlist::random_activity(&d.netlist, 128, 3).expect("valid netlist");
        let p = estimate_power_with_activity(&d, &lib, &report, &cfg, &activity.per_net).unwrap();
        // An inverter chain fed with random bits toggles heavily, so the
        // measured-activity estimate exceeds the 0.1 blanket one.
        let blanket = estimate_power(&d, &lib, &report, &cfg).unwrap();
        assert!(
            p.internal > blanket.internal,
            "{} vs {}",
            p.internal,
            blanket.internal
        );
    }

    #[test]
    fn unknown_cell_is_reported() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut d = chain(2, "INV_1");
        let report = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        d.cells[0] = varitune_liberty::CellId(u32::MAX);
        let err =
            estimate_power(&d, &lib, &report, &PowerConfig::with_clock_period(5.0)).unwrap_err();
        assert!(matches!(err, StaError::UnknownCell { .. }));
    }
}
