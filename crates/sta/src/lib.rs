//! Static timing analysis with statistical path/design timing.
//!
//! Implements §V of the paper: propagate arrivals and slews through a mapped
//! design using bilinear LUT interpolation, extract the worst path to every
//! unique endpoint, and convolve per-cell `(mean, sigma)` pairs from the
//! statistical library into path and design distributions (eqs. 5–11).
//!
//! * [`mapped`] — [`MappedDesign`]: a generic netlist plus the library cell
//!   chosen for every gate, and the wire-load model,
//! * [`engine`] — [`TimingGraph`]: the build-once interned timing engine
//!   (levelized, dirty-cone incremental re-timing after local edits,
//!   parallel within levels, bit-identical to a full analysis),
//! * [`graph`] — the [`analyze`] entry point (a thin wrapper over one
//!   engine build-and-propagate) and the report types,
//! * [`paths`] — per-endpoint worst-path extraction, path depth, and the
//!   statistical path/design metrics,
//! * [`mc`] — deterministic (bit-identical for any thread count) parallel
//!   Monte-Carlo validation of the extracted paths against the analytic
//!   convolution.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use varitune_libchar::{generate_nominal, GenerateConfig};
//! use varitune_netlist::{GateKind, Netlist};
//! use varitune_sta::{analyze, MappedDesign, StaConfig, WireModel};
//!
//! // A two-gate design mapped onto the synthetic library.
//! let lib = generate_nominal(&GenerateConfig::small_for_tests());
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let x = nl.add_net("x");
//! let y = nl.add_net("y");
//! nl.add_gate(GateKind::Nand, vec![a, b], vec![x]);
//! nl.add_gate(GateKind::Inv, vec![x], vec![y]);
//! nl.mark_output(y);
//! let design =
//!     MappedDesign::from_names(nl, &["ND2_2", "INV_1"], &lib, WireModel::default())?;
//! let report = analyze(&design, &lib, &StaConfig::with_clock_period(1.0))?;
//! assert!(report.worst_slack() > 0.0); // comfortably meets 1 ns
//! # Ok(())
//! # }
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod engine;
pub mod graph;
pub mod hold;
pub mod mapped;
pub mod mc;
pub mod paths;
pub mod power;
pub mod report;
pub mod sdf;
pub mod ssta;

pub use engine::TimingGraph;
pub use graph::{analyze, required_times, StaConfig, StaError, TimingReport};
pub use hold::{analyze_hold, analyze_hold_soa, HoldConfig, HoldReport};
pub use mapped::{MappedDesign, SoaDesign, WireModel};
pub use mc::{mc_cells, simulate_worst_paths, PathMcResult};
pub use paths::{deadline_at_yield, timing_yield, DesignTiming, PathTiming};
pub use power::{estimate_power, estimate_power_with_activity, PowerConfig, PowerReport};
pub use report::report_timing;
pub use sdf::write_sdf;
pub use ssta::{
    analyze_ssta, CanonicalForm, GraphMcResult, SstaEndpoint, SstaModel, SstaOptions, SstaReport,
    GLOBAL_SOURCE,
};
