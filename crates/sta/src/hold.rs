//! Hold (min-delay) analysis.
//!
//! Setup analysis asks "does the slowest path arrive before the next
//! edge?"; hold analysis asks "does the fastest path arrive *after* the
//! capturing flip-flop has safely latched the previous value?". With an
//! ideal (skew-free) clock the check at every flip-flop data input is
//! `min_arrival ≥ hold_time`.
//!
//! Hold robustness matters to the paper's story: local variation makes
//! fast outliers as well as slow ones, so a design squeezed only for setup
//! can fail hold on a fast die. The min-delay propagation mirrors
//! [`crate::graph::analyze`] with minima everywhere: earliest arrivals,
//! fastest (minimum) arc delays, and the *steepest* slew (which produces
//! the smallest delays, making the check conservative).

use varitune_liberty::{Cell, CellId, Library};
use varitune_netlist::{NetId, NetlistView, ValidateNetlistError};

use crate::graph::{StaConfig, StaError};
use crate::mapped::{net_loads_view, MappedDesign, SoaDesign, WireModel};

/// Hold-check configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HoldConfig {
    /// Hold requirement of capturing flip-flops (ns).
    pub hold_time: f64,
    /// Transition assumed on primary inputs (ns).
    pub input_slew: f64,
    /// Clock transition at flip-flop clock pins (ns).
    pub clock_slew: f64,
}

impl Default for HoldConfig {
    fn default() -> Self {
        Self {
            hold_time: 0.02,
            input_slew: 0.05,
            clock_slew: 0.03,
        }
    }
}

impl From<&StaConfig> for HoldConfig {
    fn from(c: &StaConfig) -> Self {
        Self {
            input_slew: c.input_slew,
            clock_slew: c.clock_slew,
            ..Self::default()
        }
    }
}

/// One hold endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HoldEndpoint {
    /// The flip-flop data net checked.
    pub net: NetId,
    /// Capturing flip-flop gate index.
    pub gate: usize,
    /// Earliest data arrival (ns).
    pub min_arrival: f64,
    /// Hold requirement (ns).
    pub hold_time: f64,
}

impl HoldEndpoint {
    /// Hold slack = earliest arrival − hold time.
    pub fn slack(&self) -> f64 {
        self.min_arrival - self.hold_time
    }
}

/// Result of [`analyze_hold`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HoldReport {
    /// Earliest arrival per net (ns); `+inf` for unreached nets.
    pub min_arrivals: Vec<f64>,
    /// All flip-flop hold endpoints.
    pub endpoints: Vec<HoldEndpoint>,
}

impl HoldReport {
    /// Worst (smallest) hold slack; `+inf` with no endpoints.
    pub fn worst_slack(&self) -> f64 {
        self.endpoints
            .iter()
            .map(HoldEndpoint::slack)
            .fold(f64::INFINITY, f64::min)
    }

    /// Whether every endpoint meets hold.
    pub fn meets_hold(&self) -> bool {
        self.worst_slack() >= 0.0
    }
}

/// Runs min-delay (hold) analysis of `design` against `lib`.
///
/// # Errors
///
/// Returns [`StaError`] under the same conditions as
/// [`crate::graph::analyze`].
pub fn analyze_hold(
    design: &MappedDesign,
    lib: &Library,
    config: &HoldConfig,
) -> Result<HoldReport, StaError> {
    design.netlist.validate()?;
    analyze_hold_view(
        &design.netlist,
        &design.cells,
        design.wire_model,
        lib,
        config,
    )
}

/// [`analyze_hold`] over the arena/SoA design form — same propagation
/// through the same view-generic core, so the two forms of one design
/// report bit-identical hold slacks.
///
/// # Errors
///
/// Returns [`StaError`] under the same conditions as [`analyze_hold`].
pub fn analyze_hold_soa(
    design: &SoaDesign,
    lib: &Library,
    config: &HoldConfig,
) -> Result<HoldReport, StaError> {
    design.netlist.validate()?;
    analyze_hold_view(
        &design.netlist,
        &design.cells,
        design.wire_model,
        lib,
        config,
    )
}

/// Topological order of the combinational gates over any netlist view —
/// the view-generic sibling of `graph::topo_order`. Any topological order
/// gives bit-identical hold results (each gate reads only finalized
/// inputs and folds them in input order), but this mirrors the original's
/// Kahn traversal anyway.
fn topo_order_view<V: NetlistView>(nl: &V) -> Result<Vec<usize>, StaError> {
    let n = nl.gate_count();
    let mut driver = vec![usize::MAX; nl.net_count()];
    for gi in 0..n {
        for &out in nl.gate_outputs(gi) {
            driver[out.0 as usize] = gi;
        }
    }
    let is_comb = |gi: usize| !nl.gate_kind(gi).is_sequential();
    let mut indeg = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (gi, deg) in indeg.iter_mut().enumerate() {
        if !is_comb(gi) {
            continue;
        }
        for &inp in nl.gate_inputs(gi) {
            let src = driver[inp.0 as usize];
            if src != usize::MAX && is_comb(src) {
                *deg += 1;
                succs[src].push(gi);
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&gi| is_comb(gi) && indeg[gi] == 0).collect();
    let mut order = Vec::with_capacity(queue.len());
    while let Some(gi) = queue.pop() {
        order.push(gi);
        for &s in &succs[gi] {
            indeg[s] -= 1;
            if indeg[s] == 0 {
                queue.push(s);
            }
        }
    }
    let comb_count = (0..n).filter(|&gi| is_comb(gi)).count();
    if order.len() != comb_count {
        return Err(StaError::Netlist(
            ValidateNetlistError::CombinationalCycle {
                net: "unknown".to_string(),
            },
        ));
    }
    Ok(order)
}

/// The hold propagation itself, generic over netlist storage.
fn analyze_hold_view<V: NetlistView>(
    nl: &V,
    cells: &[CellId],
    wire_model: WireModel,
    lib: &Library,
    config: &HoldConfig,
) -> Result<HoldReport, StaError> {
    let loads = net_loads_view(nl, cells, wire_model, lib);
    let cell_of = |gi: usize| -> Option<&Cell> { lib.cells.get(cells[gi].index()) };
    let unknown = |gi: usize| StaError::UnknownCell {
        gate: gi,
        name: format!("cell#{}", cells[gi].0),
    };

    let mut arrival = vec![f64::INFINITY; nl.net_count()];
    let mut slew = vec![0.0f64; nl.net_count()];
    for &pi in nl.primary_inputs() {
        arrival[pi.0 as usize] = 0.0;
        slew[pi.0 as usize] = config.input_slew;
    }
    for gi in 0..nl.gate_count() {
        if !nl.gate_kind(gi).is_sequential() {
            continue;
        }
        let cell = cell_of(gi).ok_or_else(|| unknown(gi))?;
        for (j, &out) in nl.gate_outputs(gi).iter().enumerate() {
            let pin = cell.output_pins().nth(j).ok_or(StaError::MissingArc {
                gate: gi,
                cell: cell.name.clone(),
            })?;
            let arc = pin.timing.first().ok_or(StaError::MissingArc {
                gate: gi,
                cell: cell.name.clone(),
            })?;
            let load = loads[out.0 as usize];
            arrival[out.0 as usize] = arc.best_delay(config.clock_slew, load)?;
            slew[out.0 as usize] = arc.best_transition(config.clock_slew, load)?;
        }
    }

    for gi in topo_order_view(nl)? {
        let cell = cell_of(gi).ok_or_else(|| unknown(gi))?;
        let input_pin_names: Vec<&str> = cell.input_pins().map(|p| p.name.as_str()).collect();
        for (j, &out) in nl.gate_outputs(gi).iter().enumerate() {
            let pin = cell.output_pins().nth(j).ok_or(StaError::MissingArc {
                gate: gi,
                cell: cell.name.clone(),
            })?;
            let load = loads[out.0 as usize];
            let mut best_arr = f64::INFINITY;
            let mut best_slew = f64::INFINITY;
            for (k, &inp) in nl.gate_inputs(gi).iter().enumerate() {
                let arc = pin
                    .timing
                    .iter()
                    .find(|a| a.related_pin == input_pin_names[k])
                    .ok_or(StaError::MissingArc {
                        gate: gi,
                        cell: cell.name.clone(),
                    })?;
                let d = arc.best_delay(slew[inp.0 as usize], load)?;
                let a = arrival[inp.0 as usize] + d;
                if a < best_arr {
                    best_arr = a;
                    best_slew = arc.best_transition(slew[inp.0 as usize], load)?;
                }
            }
            arrival[out.0 as usize] = best_arr;
            slew[out.0 as usize] = best_slew;
        }
    }

    // The hold requirement comes from the capturing flip-flop's
    // characterized HoldRising arc when present.
    let mut endpoints = Vec::new();
    for gi in 0..nl.gate_count() {
        if nl.gate_kind(gi).is_sequential() {
            let Some(&d) = nl.gate_inputs(gi).first() else {
                return Err(StaError::MalformedGate {
                    gate: gi,
                    reason: "sequential gate has no data input".into(),
                });
            };
            let hold_time = cell_of(gi)
                .and_then(|cell| {
                    crate::graph::constraint_of(
                        cell,
                        varitune_liberty::TimingType::HoldRising,
                        slew[d.0 as usize],
                        config.clock_slew,
                    )
                })
                .unwrap_or(config.hold_time);
            endpoints.push(HoldEndpoint {
                net: d,
                gate: gi,
                min_arrival: arrival[d.0 as usize],
                hold_time,
            });
        }
    }
    Ok(HoldReport {
        min_arrivals: arrival,
        endpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{analyze, StaConfig};
    use crate::mapped::WireModel;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn lib() -> Library {
        generate_nominal(&GenerateConfig::small_for_tests())
    }

    /// FF -> [n inverters] -> FF.
    fn reg_chain(n: usize) -> MappedDesign {
        let mut nl = Netlist::new("regchain");
        let d0 = nl.add_input("d0");
        let q0 = nl.add_net("q0");
        nl.add_gate(GateKind::Dff, vec![d0], vec![q0]);
        let mut prev = q0;
        let mut names = vec!["DF_1".to_string()];
        for i in 0..n {
            let z = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            names.push("INV_2".to_string());
            prev = z;
        }
        let q1 = nl.add_net("q1");
        nl.add_gate(GateKind::Dff, vec![prev], vec![q1]);
        names.push("DF_1".to_string());
        nl.mark_output(q1);
        MappedDesign::from_names(nl, &names, &lib(), WireModel::default()).unwrap()
    }

    #[test]
    fn min_arrival_below_max_arrival() {
        let lib = lib();
        let d = reg_chain(4);
        let hold = analyze_hold(&d, &lib, &HoldConfig::default()).unwrap();
        let setup = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        for (i, &min_a) in hold.min_arrivals.iter().enumerate() {
            if min_a.is_finite() && setup.nets[i].arrival.is_finite() {
                assert!(
                    min_a <= setup.nets[i].arrival + 1e-12,
                    "net {i}: min {min_a} > max {}",
                    setup.nets[i].arrival
                );
            }
        }
    }

    /// The capturing (second) flip-flop's endpoint: the launching FF's D
    /// hangs on a primary input with arrival 0, which correctly fails any
    /// positive hold requirement (real flows constrain it with an input
    /// delay), so the FF-to-FF transfer is the interesting check.
    fn capture_slack(r: &HoldReport) -> f64 {
        r.endpoints
            .iter()
            .max_by_key(|e| e.gate)
            .expect("two flip-flops")
            .slack()
    }

    #[test]
    fn buffered_transfer_meets_hold_pi_endpoint_does_not() {
        let lib = lib();
        // A few inverters of delay comfortably beat a ~12 ps hold time.
        let buffered = analyze_hold(&reg_chain(4), &lib, &HoldConfig::default()).unwrap();
        assert!(
            capture_slack(&buffered) > 0.0,
            "{}",
            capture_slack(&buffered)
        );
        // The unconstrained primary-input endpoint reports a violation —
        // the conservative (correct) answer.
        assert!(!buffered.meets_hold());
    }

    #[test]
    fn characterized_hold_arc_overrides_the_config_constant() {
        let lib = lib();
        // A config with an absurd constant is ignored when the capturing
        // flip-flop carries a HoldRising arc; the library wins.
        let harsh = HoldConfig {
            hold_time: 10.0,
            ..HoldConfig::default()
        };
        let r = analyze_hold(&reg_chain(4), &lib, &harsh).unwrap();
        let ep = r.endpoints.iter().max_by_key(|e| e.gate).expect("two FFs");
        assert!(
            ep.hold_time < 0.1,
            "characterized hold {} should replace the 10 ns constant",
            ep.hold_time
        );
        // Strip the constraint arcs and the constant applies again.
        let mut bare = lib.clone();
        for cell in &mut bare.cells {
            for pin in &mut cell.pins {
                pin.timing
                    .retain(|a| a.timing_type != varitune_liberty::TimingType::HoldRising);
            }
        }
        let r2 = analyze_hold(&reg_chain(4), &bare, &harsh).unwrap();
        let ep2 = r2.endpoints.iter().max_by_key(|e| e.gate).expect("two FFs");
        assert_eq!(ep2.hold_time, 10.0);
        assert!(ep2.slack() < 0.0);
    }

    #[test]
    fn soa_hold_matches_mapped_hold_bit_for_bit() {
        let lib = lib();
        let d = reg_chain(5);
        let soa = SoaDesign::new(
            varitune_netlist::SoaNetlist::from_netlist(&d.netlist),
            d.cells.clone(),
            d.wire_model,
        );
        let a = analyze_hold(&d, &lib, &HoldConfig::default()).unwrap();
        let b = analyze_hold_soa(&soa, &lib, &HoldConfig::default()).unwrap();
        assert_eq!(a.min_arrivals.len(), b.min_arrivals.len());
        for (i, (x, y)) in a.min_arrivals.iter().zip(&b.min_arrivals).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "net {i}");
        }
        assert_eq!(a.endpoints, b.endpoints);
    }

    #[test]
    fn hold_endpoints_cover_every_ff() {
        let lib = lib();
        let d = reg_chain(3);
        let r = analyze_hold(&d, &lib, &HoldConfig::default()).unwrap();
        assert_eq!(r.endpoints.len(), 2);
        for ep in &r.endpoints {
            assert!(ep.min_arrival.is_finite());
        }
    }

    #[test]
    fn hold_slack_grows_with_path_depth() {
        let lib = lib();
        let short = analyze_hold(&reg_chain(1), &lib, &HoldConfig::default()).unwrap();
        let long = analyze_hold(&reg_chain(8), &lib, &HoldConfig::default()).unwrap();
        assert!(capture_slack(&long) > capture_slack(&short));
    }

    #[test]
    fn reconvergence_takes_the_fastest_branch() {
        let lib = lib();
        // q0 fans out to a long and a short branch reconverging at a NAND;
        // the min arrival at the NAND output must follow the short branch.
        let mut nl = Netlist::new("reconv");
        let d0 = nl.add_input("d0");
        let q0 = nl.add_net("q0");
        nl.add_gate(GateKind::Dff, vec![d0], vec![q0]);
        let mut names = vec!["DF_1".to_string()];
        // Long branch: 4 inverters.
        let mut prev = q0;
        for i in 0..4 {
            let z = nl.add_net(format!("l{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            names.push("INV_2".into());
            prev = z;
        }
        let merge = nl.add_net("merge");
        nl.add_gate(GateKind::Nand, vec![prev, q0], vec![merge]);
        names.push("ND2_2".into());
        let q1 = nl.add_net("q1");
        nl.add_gate(GateKind::Dff, vec![merge], vec![q1]);
        names.push("DF_1".into());
        let d = MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap();
        let hold = analyze_hold(&d, &lib, &HoldConfig::default()).unwrap();
        let setup = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        let merge_idx = 6; // q0=1, l0..l3=2..5, merge=6
        assert!(
            hold.min_arrivals[merge_idx] < setup.nets[merge_idx].arrival,
            "min {} should undercut max {}",
            hold.min_arrivals[merge_idx],
            setup.nets[merge_idx].arrival
        );
    }
}
