//! Statistical static timing analysis (SSTA) over the arena timing graph.
//!
//! Every timing arc carries a *canonical first-order form*:
//!
//! ```text
//! A = mean + Σₖ sensₖ · Xₖ + resid · R
//! ```
//!
//! where the `Xₖ` are *keyed* variation sources held sparsely: key 0 is
//! the shared die-level factor (mirroring
//! [`varitune_variation::ProcessCorner`]'s global sigma) and key `arc + 1`
//! is timing arc `arc`'s own local source. Carrying local sigma as keyed
//! sources — bounded per form by [`SstaOptions::max_local_terms`], with
//! overflow folded into the independent residual `R` — preserves the
//! covariance of reconvergent paths through shared arcs, which a lumped
//! independent residual systematically loses at every Clark max.
//! Arrival forms are propagated through the existing levelized
//! schedule with statistical `add` along arcs and Clark's-approximation
//! `max` at gate outputs. The same sharded, shard-order-merged schedule as
//! the deterministic engine is reused, so results are bit-identical at any
//! thread count.
//!
//! On top of the propagated forms the module computes per-endpoint
//! mean/sigma, per-gate criticality (probability a gate lies on the
//! critical path, via the tightness weights of each Clark max), a design
//! level worst-period form, and a yield-at-target-period metric.
//!
//! Validation lives in two places: unit tests here cover the algebra and
//! the degenerate (`sigma_scale = 0`) reduction to deterministic STA, and
//! a graph-level Monte Carlo oracle ([`SstaModel::monte_carlo`]) samples
//! the exact same arc model so the differential suite can compare moments.

use std::collections::HashMap;

use varitune_libchar::StatLibrary;
use varitune_liberty::{InterpolateError, Library, TimingArc};
use varitune_netlist::NetId;
use varitune_variation::mc::VariationMode;
use varitune_variation::parallel::{resolve_threads, run_shards, run_trials};
use varitune_variation::rng::{derive_seed, rng_from};
use varitune_variation::sampler::Normal;
use varitune_variation::stats::normal_cdf;
use varitune_variation::ProcessCorner;

use crate::engine::{Core, TimingGraph, MIN_PARALLEL_WIDTH, NONE_U32, SHARD_GATES};
use crate::graph::StaError;

/// Standard normal density.
fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Source key of the shared die-level variation factor. Every timing
/// arc's local source gets key `arc_index + 1`, so key 0 is reserved.
pub const GLOBAL_SOURCE: u32 = 0;

/// One shard's propagation output: output forms and tightness weights in
/// shard-local gate order (merged back in shard order by the caller).
type ShardOutput = Result<(Vec<CanonicalForm>, Vec<f64>), StaError>;

/// Canonical first-order delay form: `mean + Σₖ sensₖ·Xₖ + resid·R`.
///
/// `sens` is a *sparse* sensitivity vector, sorted by source key. Key
/// [`GLOBAL_SOURCE`] is the shared die-level factor; key `arc + 1` is the
/// independent local source of timing arc `arc`. Keeping each arc's local
/// sigma as its own keyed source (instead of lumping it into `resid`) is
/// what lets [`CanonicalForm::max`] see the true covariance of
/// reconvergent paths that share upstream arcs — the dominant error of
/// purely independent-residual SSTA. `resid` collects whatever genuinely
/// independent variance remains (Clark cross terms and truncation
/// overflow); residuals of distinct forms are uncorrelated, so
/// [`CanonicalForm::add`] combines them in quadrature.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalForm {
    /// Mean value (equals the deterministic arrival when all sigmas are 0).
    pub mean: f64,
    /// Sparse `(source key, sensitivity)` pairs, sorted by key.
    pub sens: Vec<(u32, f64)>,
    /// Independent residual coefficient (a standard deviation).
    pub resid: f64,
}

impl CanonicalForm {
    /// A deterministic (zero-variance) form.
    pub fn deterministic(mean: f64) -> Self {
        CanonicalForm {
            mean,
            sens: Vec::new(),
            resid: 0.0,
        }
    }

    /// Total variance: quadrature sum of source sensitivities plus the
    /// independent residual.
    pub fn variance(&self) -> f64 {
        self.sens.iter().map(|&(_, s)| s * s).sum::<f64>() + self.resid * self.resid
    }

    /// Standard deviation (never negative).
    pub fn sigma(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Statistical sum: means add, sensitivities to the same source add,
    /// independent residuals add in quadrature.
    pub fn add(&self, other: &CanonicalForm) -> CanonicalForm {
        let mut sens = Vec::with_capacity(self.sens.len() + other.sens.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.sens.len() && j < other.sens.len() {
            let (ka, va) = self.sens[i];
            let (kb, vb) = other.sens[j];
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    sens.push((ka, va));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    sens.push((kb, vb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let s = va + vb;
                    if s != 0.0 {
                        sens.push((ka, s));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        sens.extend_from_slice(&self.sens[i..]);
        sens.extend_from_slice(&other.sens[j..]);
        CanonicalForm {
            mean: self.mean + other.mean,
            sens,
            resid: (self.resid * self.resid + other.resid * other.resid).sqrt(),
        }
    }

    /// Shift by a constant (only the mean moves).
    pub fn shift(&self, c: f64) -> CanonicalForm {
        CanonicalForm {
            mean: self.mean + c,
            sens: self.sens.clone(),
            resid: self.resid,
        }
    }

    /// Clark's-approximation statistical max.
    ///
    /// The covariance term is the dot product of the two sparse
    /// sensitivity vectors over their *shared* keys, so two paths through
    /// common upstream arcs are maxed as the correlated quantities they
    /// are. Returns the max form plus the *tightness* `T = P(self >=
    /// other)`. When the two forms are (numerically) perfectly correlated
    /// or both deterministic, the max degenerates to whichever mean is
    /// larger, with `self` (the accumulator in a fold) winning ties —
    /// matching the deterministic engine's strict `arrival > best`
    /// replacement rule so that zero-sigma SSTA reduces bit-exactly to
    /// deterministic STA.
    pub fn max(&self, other: &CanonicalForm) -> (CanonicalForm, f64) {
        let var_a = self.variance();
        let var_b = other.variance();
        let mut cov = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.sens.len() && j < other.sens.len() {
            match self.sens[i].0.cmp(&other.sens[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    cov += self.sens[i].1 * other.sens[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let theta2 = var_a + var_b - 2.0 * cov;
        if theta2 <= 0.0 {
            // Perfectly correlated (or both deterministic): the max is just
            // the larger of the two, exactly.
            return if other.mean > self.mean {
                (other.clone(), 0.0)
            } else {
                (self.clone(), 1.0)
            };
        }
        let theta = theta2.sqrt();
        let alpha = (self.mean - other.mean) / theta;
        let t = normal_cdf(alpha);
        let phi = normal_pdf(alpha);
        let mean = self.mean * t + other.mean * (1.0 - t) + theta * phi;
        // Second raw moment of max(A, B) per Clark (1961).
        let raw2 = (var_a + self.mean * self.mean) * t
            + (var_b + other.mean * other.mean) * (1.0 - t)
            + (self.mean + other.mean) * theta * phi;
        let var = (raw2 - mean * mean).max(0.0);
        // Union of keys, tightness-weighted: sₖ = T·aₖ + (1−T)·bₖ.
        let mut sens = Vec::with_capacity(self.sens.len() + other.sens.len());
        let mut sens_sq = 0.0;
        {
            let mut push = |k: u32, s: f64| {
                if s != 0.0 {
                    sens_sq += s * s;
                    sens.push((k, s));
                }
            };
            let (mut i, mut j) = (0usize, 0usize);
            while i < self.sens.len() && j < other.sens.len() {
                let (ka, va) = self.sens[i];
                let (kb, vb) = other.sens[j];
                match ka.cmp(&kb) {
                    std::cmp::Ordering::Less => {
                        push(ka, va * t);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        push(kb, vb * (1.0 - t));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        push(ka, va * t + vb * (1.0 - t));
                        i += 1;
                        j += 1;
                    }
                }
            }
            for &(k, v) in &self.sens[i..] {
                push(k, v * t);
            }
            for &(k, v) in &other.sens[j..] {
                push(k, v * (1.0 - t));
            }
        }
        let resid = (var - sens_sq).max(0.0).sqrt();
        (CanonicalForm { mean, sens, resid }, t)
    }

    /// Re-attribute the independent residual to source `key`, zeroing
    /// `resid`. Clark's max leaves its unexplained variance (`var −
    /// Σ sens²`) in the residual; when such a form fans out and the copies
    /// later reconverge, their residuals are the *same* random variable,
    /// not independent draws — keying the residual at the max site keeps
    /// that covariance visible to downstream maxes. Total variance is
    /// unchanged.
    pub fn key_residual(&mut self, key: u32) {
        if self.resid == 0.0 {
            return;
        }
        let pos = self.sens.partition_point(|&(k, _)| k < key);
        if pos < self.sens.len() && self.sens[pos].0 == key {
            // Key collision cannot happen for the per-arc max-site keys the
            // model uses, but fold in quadrature rather than corrupt the
            // sorted-unique invariant if a caller reuses a key.
            let v = self.sens[pos].1;
            self.sens[pos].1 = (v * v + self.resid * self.resid).sqrt();
        } else {
            self.sens.insert(pos, (key, self.resid));
        }
        self.resid = 0.0;
    }

    /// Bound the sparse vector to at most `max_local` *local* (non-global)
    /// terms: the `max_local` largest by |sensitivity| survive (ties
    /// broken by ascending key, so the choice is deterministic), the rest
    /// are folded into the independent residual in quadrature. The global
    /// source (key [`GLOBAL_SOURCE`]) is always kept. Mean and total
    /// variance are preserved exactly; only cross-form covariance of the
    /// folded tail is given up.
    pub fn truncated(mut self, max_local: usize) -> CanonicalForm {
        let n_local = self
            .sens
            .iter()
            .filter(|&&(k, _)| k != GLOBAL_SOURCE)
            .count();
        if n_local <= max_local {
            return self;
        }
        let mut locals: Vec<(u32, f64)> = self
            .sens
            .iter()
            .copied()
            .filter(|&(k, _)| k != GLOBAL_SOURCE)
            .collect();
        locals.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()).then(a.0.cmp(&b.0)));
        let mut drop_keys: Vec<u32> = Vec::with_capacity(n_local - max_local);
        let mut folded = 0.0;
        for &(k, v) in &locals[max_local..] {
            drop_keys.push(k);
            folded += v * v;
        }
        drop_keys.sort_unstable();
        self.sens
            .retain(|(k, _)| *k == GLOBAL_SOURCE || drop_keys.binary_search(k).is_err());
        self.resid = (self.resid * self.resid + folded).sqrt();
        self
    }
}

/// Interpolate mean and sigma delay for one arc pair at a (slew, load)
/// query point, taking the worst (largest-mean) edge over `cell_rise` and
/// `cell_fall` — mirroring [`TimingArc::worst_delay`]'s fold order and tie
/// handling bit-exactly, so the mean returned here equals the
/// deterministic engine's arc delay to the last bit.
fn stat_delay(
    mean_arc: &TimingArc,
    sigma_arc: &TimingArc,
    slew: f64,
    load: f64,
) -> Result<(f64, f64), InterpolateError> {
    let pairs = [
        (mean_arc.cell_rise.as_ref(), sigma_arc.cell_rise.as_ref()),
        (mean_arc.cell_fall.as_ref(), sigma_arc.cell_fall.as_ref()),
    ];
    let mut best: Option<(f64, f64)> = None;
    for (m_lut, s_lut) in pairs {
        let Some(m_lut) = m_lut else { continue };
        let m = m_lut.interpolate(slew, load)?;
        let s = match s_lut {
            Some(s_lut) => s_lut.interpolate(slew, load)?,
            None => 0.0,
        };
        if best.is_none_or(|(bm, _)| m > bm) {
            best = Some((m, s));
        }
    }
    best.ok_or(InterpolateError::EmptyTable)
}

/// Resolve one gate's sigma-column arcs in `lib`, mirroring the engine's
/// `intern_cell` order exactly: sequential cells take the first timing arc
/// of each output pin (one arc per output); combinational cells take,
/// output-major, the arc on each output pin whose `related_pin` names each
/// input pin in order.
fn resolve_sigma_arcs<'s>(
    lib: &'s Library,
    gi: usize,
    cell_name: &str,
    n_in: usize,
    n_out: usize,
    seq: bool,
) -> Result<Vec<&'s TimingArc>, StaError> {
    let cid = lib
        .cell_id(cell_name)
        .ok_or_else(|| StaError::UnknownCell {
            gate: gi,
            name: cell_name.to_string(),
        })?;
    let cell = &lib.cells[cid.index()];
    let missing = || StaError::MissingArc {
        gate: gi,
        cell: cell_name.to_string(),
    };
    let mut arcs = Vec::with_capacity(if seq { n_out } else { n_out * n_in });
    if seq {
        for j in 0..n_out {
            let pin = cell.output_pins().nth(j).ok_or_else(missing)?;
            arcs.push(pin.timing.first().ok_or_else(missing)?);
        }
    } else {
        let pins: Vec<_> = cell.input_pins().collect();
        if pins.len() < n_in {
            return Err(missing());
        }
        for j in 0..n_out {
            let pin = cell.output_pins().nth(j).ok_or_else(missing)?;
            for input_pin in pins.iter().take(n_in) {
                let arc = pin
                    .timing
                    .iter()
                    .find(|a| a.related_pin == input_pin.name)
                    .ok_or_else(missing)?;
                arcs.push(arc);
            }
        }
    }
    Ok(arcs)
}

/// Options controlling the statistical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SstaOptions {
    /// Process corner supplying the mean scale factor and global sigma.
    pub corner: ProcessCorner,
    /// Whether the shared die-level source participates.
    pub mode: VariationMode,
    /// Multiplier on every sigma (`0` recovers deterministic STA exactly).
    pub sigma_scale: f64,
    /// Cap on local (per-arc) sensitivity terms carried per canonical
    /// form; the smallest-|sens| overflow folds into the independent
    /// residual. Bounds memory and propagation cost to `O(arcs ×
    /// max_local_terms)` at a small, deterministic accuracy cost.
    pub max_local_terms: usize,
}

impl Default for SstaOptions {
    fn default() -> Self {
        SstaOptions {
            corner: ProcessCorner::Typical,
            mode: VariationMode::GlobalAndLocal,
            sigma_scale: 1.0,
            max_local_terms: 128,
        }
    }
}

/// Per-endpoint statistical arrival summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SstaEndpoint {
    /// Endpoint net.
    pub net: NetId,
    /// Mean arrival at the endpoint.
    pub mean: f64,
    /// Arrival standard deviation.
    pub sigma: f64,
    /// Required time at the endpoint (period minus setup for FF data pins).
    pub required: f64,
    /// Probability this endpoint is the design's critical endpoint.
    pub criticality: f64,
}

/// Result of a full statistical analysis pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SstaReport {
    /// Corner the model was built at.
    pub corner: ProcessCorner,
    /// Variation mode of the model.
    pub mode: VariationMode,
    /// Sigma multiplier of the model.
    pub sigma_scale: f64,
    /// Clock period used for required times and slack.
    pub clock_period: f64,
    /// Per-endpoint moments and criticality, in endpoint order.
    pub endpoints: Vec<SstaEndpoint>,
    /// Design-level form of `max over endpoints of (arrival − required +
    /// period)`: the smallest clock period at which the design meets
    /// timing. Its mean/sigma drive the yield metric.
    pub design: CanonicalForm,
    /// Per-gate criticality: probability the gate lies on the critical path.
    pub gate_criticality: Vec<f64>,
    /// Propagated arrival form per net (indexed by net id).
    pub arrivals: Vec<CanonicalForm>,
}

impl SstaReport {
    /// Mean of the minimum feasible clock period.
    pub fn design_mean(&self) -> f64 {
        self.design.mean
    }

    /// Sigma of the minimum feasible clock period.
    pub fn design_sigma(&self) -> f64 {
        self.design.sigma()
    }

    /// Probability the design meets timing at clock period `period`.
    pub fn yield_at(&self, period: f64) -> f64 {
        let sigma = self.design.sigma();
        if sigma <= 0.0 {
            return if period >= self.design.mean { 1.0 } else { 0.0 };
        }
        normal_cdf((period - self.design.mean) / sigma)
    }

    /// Smallest clock period achieving yield `target`, by bisection.
    ///
    /// # Errors
    ///
    /// Statistical quantities are data, not invariants: an out-of-domain
    /// target or tolerance is reported as [`StaError::InvalidParameter`],
    /// never a panic.
    pub fn period_at_yield(&self, target: f64, tol: f64) -> Result<f64, StaError> {
        if !(target > 0.0 && target < 1.0) {
            return Err(StaError::InvalidParameter {
                reason: format!("yield target must be in (0, 1), got {target}"),
            });
        }
        // `tol <= 0.0` is false for NaN, but the finiteness check rejects
        // NaN on its own.
        if tol <= 0.0 || !tol.is_finite() {
            return Err(StaError::InvalidParameter {
                reason: format!("bisection tolerance must be finite and > 0, got {tol}"),
            });
        }
        let sigma = self.design.sigma();
        if sigma <= 0.0 {
            return Ok(self.design.mean);
        }
        let mut lo = self.design.mean - 10.0 * sigma;
        let mut hi = self.design.mean + 10.0 * sigma;
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            if self.yield_at(mid) >= target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }

    /// The `n` most critical gates as `(gate index, criticality)`, sorted
    /// by descending criticality (ties broken by ascending gate index so
    /// the ranking is deterministic).
    pub fn top_gate_criticalities(&self, n: usize) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> =
            self.gate_criticality.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }

    /// Sum of endpoint criticalities (≈ 1 up to Clark/fp error).
    pub fn criticality_sum(&self) -> f64 {
        self.endpoints.iter().map(|e| e.criticality).sum()
    }

    /// Digest over every endpoint moment, the design form, and every gate
    /// criticality — bit-exact, so equal digests mean bit-identical
    /// results.
    pub fn digest(&self) -> u64 {
        fn mix(h: u64, bits: u64) -> u64 {
            (h ^ bits).wrapping_mul(0x0100_0000_01b3).rotate_left(17)
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for ep in &self.endpoints {
            h = mix(h, u64::from(ep.net.0));
            h = mix(h, ep.mean.to_bits());
            h = mix(h, ep.sigma.to_bits());
            h = mix(h, ep.criticality.to_bits());
        }
        h = mix(h, self.design.mean.to_bits());
        h = mix(h, self.design.resid.to_bits());
        for &(k, s) in &self.design.sens {
            h = mix(h, u64::from(k));
            h = mix(h, s.to_bits());
        }
        for c in &self.gate_criticality {
            h = mix(h, c.to_bits());
        }
        h
    }
}

/// Graph-level Monte Carlo moments, from sampling the same arc model the
/// SSTA propagation uses. Bit-identical at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMcResult {
    /// Number of trials run.
    pub trials: usize,
    /// Per-endpoint sample mean, in endpoint order.
    pub endpoint_mean: Vec<f64>,
    /// Per-endpoint sample standard deviation, in endpoint order.
    pub endpoint_sigma: Vec<f64>,
    /// Sample mean of the design minimum feasible period.
    pub design_mean: f64,
    /// Sample sigma of the design minimum feasible period.
    pub design_sigma: f64,
}

/// Streaming mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default)]
struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Chan et al. pairwise merge; merging in a fixed (chunk) order keeps
    /// the result bit-identical regardless of worker count.
    fn merge(self, other: Welford) -> Welford {
        if other.n == 0 {
            return self;
        }
        if self.n == 0 {
            return other;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        Welford {
            n,
            mean: self.mean + delta * other.n as f64 / n as f64,
            m2: self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64,
        }
    }

    fn sigma(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        (self.m2 / (self.n - 1) as f64).sqrt()
    }
}

/// Trials per deterministic MC chunk. Fixed so the trial→chunk mapping —
/// and therefore the chunk-ordered moment merge — never depends on worker
/// count.
const MC_CHUNK: usize = 64;

/// Statistical timing model bound to a built [`TimingGraph`].
///
/// Holds one canonical-form ingredient set per timing arc (mean at the
/// chosen corner, relative local sigma, shared global sensitivity) plus
/// the levelized stage schedule shared with the deterministic engine.
pub struct SstaModel<'g, 'l> {
    core: &'g Core<'l>,
    opts: SstaOptions,
    /// Corner-scaled mean delay per arc (engine arc order).
    arc_mean: Vec<f64>,
    /// Relative local sigma per arc (sigma/mean, scaled).
    arc_rel: Vec<f64>,
    /// Relative sigma of the shared die-level source (0 in LocalOnly).
    global_rel: f64,
    stage_off: Vec<u32>,
    schedule: Vec<u32>,
}

impl<'g, 'l> SstaModel<'g, 'l> {
    /// Build the statistical arc model for `graph` from `stat`'s paired
    /// mean/sigma libraries.
    ///
    /// The graph must have been constructed over `&stat.mean` (the exact
    /// library, not a copy), so the mean arcs interned in the engine are
    /// the mean columns this model pairs with `stat`'s sigma columns —
    /// which is what makes the zero-sigma reduction bit-exact.
    ///
    /// # Errors
    ///
    /// [`StaError::InvalidParameter`] for a non-finite or negative
    /// `sigma_scale`; cell/arc resolution errors if `stat.sigma` does not
    /// cover the cells the graph uses.
    pub fn build(
        graph: &'g TimingGraph<'l>,
        stat: &StatLibrary,
        opts: SstaOptions,
    ) -> Result<Self, StaError> {
        if !opts.sigma_scale.is_finite() || opts.sigma_scale < 0.0 {
            return Err(StaError::InvalidParameter {
                reason: format!(
                    "sigma_scale must be finite and >= 0, got {}",
                    opts.sigma_scale
                ),
            });
        }
        let _span = varitune_trace::span!("sta.ssta.build");
        let core = graph.core();
        let f = opts.corner.delay_factor();
        let n_arcs = core.arcs.len();
        let mut arc_mean = vec![0.0f64; n_arcs];
        let mut arc_rel = vec![0.0f64; n_arcs];
        // Sigma-arc resolution is per distinct (cell, shape); memoize it.
        let mut resolved: HashMap<(u32, usize, usize, bool), Vec<&TimingArc>> = HashMap::new();
        for gi in 0..core.n_gates() {
            let inputs = core.gate_inputs(gi);
            let n_in = inputs.len();
            let n_out = core.gate_outputs(gi).len();
            let seq = core.is_seq[gi];
            let cell_idx = core.cell_idx[gi];
            let key = (cell_idx, n_in, n_out, seq);
            let sigma_arcs: &Vec<&TimingArc> = match resolved.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let cell_name = &core.lib.cells[cell_idx as usize].name;
                    v.insert(resolve_sigma_arcs(
                        &stat.sigma,
                        gi,
                        cell_name,
                        n_in,
                        n_out,
                        seq,
                    )?)
                }
            };
            let arc_base = core.arc_off[gi] as usize;
            let mean_arcs = &core.arcs[arc_base..core.arc_off[gi + 1] as usize];
            if mean_arcs.len() != sigma_arcs.len() {
                return Err(StaError::MismatchedInput {
                    reason: format!(
                        "gate #{gi}: {} mean arcs vs {} sigma arcs",
                        mean_arcs.len(),
                        sigma_arcs.len()
                    ),
                });
            }
            for j in 0..n_out {
                let out = core.gate_outputs(gi)[j] as usize;
                let load = core.loads[out];
                if seq {
                    let (m, s) =
                        stat_delay(mean_arcs[j], sigma_arcs[j], core.config.clock_slew, load)?;
                    let ai = arc_base + j;
                    arc_mean[ai] = m * f;
                    arc_rel[ai] = if m > 0.0 {
                        (s / m).max(0.0) * opts.sigma_scale
                    } else {
                        0.0
                    };
                } else {
                    for (k, &inp) in inputs.iter().enumerate() {
                        let slew = core.nets[inp as usize].slew;
                        let row = j * n_in + k;
                        let (m, s) = stat_delay(mean_arcs[row], sigma_arcs[row], slew, load)?;
                        let ai = arc_base + row;
                        arc_mean[ai] = m * f;
                        arc_rel[ai] = if m > 0.0 {
                            (s / m).max(0.0) * opts.sigma_scale
                        } else {
                            0.0
                        };
                    }
                }
            }
        }
        let global_rel = match opts.mode {
            VariationMode::GlobalAndLocal => opts.corner.global_rel_sigma() * opts.sigma_scale,
            VariationMode::LocalOnly => 0.0,
        };
        let (stage_off, schedule) = core.stage_schedule();
        varitune_trace::add("sta.ssta.arcs_modeled", n_arcs as u64);
        Ok(SstaModel {
            core,
            opts,
            arc_mean,
            arc_rel,
            global_rel,
            stage_off,
            schedule,
        })
    }

    /// Raw per-arc model ingredients `(arc_mean, arc_rel, global_rel)` in
    /// engine arc order — a diagnostic seam for external oracles and
    /// tooling that want to resample the exact model.
    #[doc(hidden)]
    pub fn arc_model(&self) -> (&[f64], &[f64], f64) {
        (&self.arc_mean, &self.arc_rel, self.global_rel)
    }

    /// The canonical form of one arc's delay: global sensitivity on the
    /// shared key, local sigma on the arc's own key (`ai + 1`), no
    /// independent residual — all of an arc's variance is attributable.
    fn arc_form(&self, ai: usize) -> CanonicalForm {
        let mean = self.arc_mean[ai];
        let mut sens = Vec::with_capacity(2);
        let g = mean * self.global_rel;
        if g != 0.0 {
            sens.push((GLOBAL_SOURCE, g));
        }
        let l = mean * self.arc_rel[ai];
        if l != 0.0 {
            sens.push((ai as u32 + 1, l));
        }
        CanonicalForm {
            mean,
            sens,
            resid: 0.0,
        }
    }

    /// Number of tightness-weight slots a gate contributes (its full arc
    /// row count).
    fn gate_weight_len(&self, gi: usize) -> usize {
        let n_out = self.core.gate_outputs(gi).len();
        if self.core.is_seq[gi] {
            n_out
        } else {
            n_out * self.core.gate_inputs(gi).len()
        }
    }

    /// Evaluate one gate: push its output forms and the per-arc tightness
    /// weights (sequential launch arcs have weight 1; each combinational
    /// input gets the telescoped Clark tightness of the fold).
    fn eval_gate(
        &self,
        gi: usize,
        forms: &[CanonicalForm],
        out_forms: &mut Vec<CanonicalForm>,
        out_w: &mut Vec<f64>,
    ) -> Result<(), StaError> {
        let outs = self.core.gate_outputs(gi);
        let arc_base = self.core.arc_off[gi] as usize;
        if self.core.is_seq[gi] {
            for j in 0..outs.len() {
                out_forms.push(self.arc_form(arc_base + j));
                out_w.push(1.0);
            }
            return Ok(());
        }
        let inputs = self.core.gate_inputs(gi);
        let n_in = inputs.len();
        // Max-site residual keys live above the per-arc local key space:
        // the Clark residual born at the fold step of arc `ai` gets key
        // `n_arcs + 1 + ai`, unique and stable across thread counts.
        let resid_key_base = self.core.arcs.len() as u32 + 1;
        for j in 0..outs.len() {
            let row = arc_base + j * n_in;
            let mut acc: Option<CanonicalForm> = None;
            let w0 = out_w.len();
            for (k, &inp) in inputs.iter().enumerate() {
                let in_form = &forms[inp as usize];
                if !in_form.mean.is_finite() {
                    return Err(StaError::MalformedGate {
                        gate: gi,
                        reason: format!(
                            "input #{k} has non-finite arrival {} during statistical propagation",
                            in_form.mean
                        ),
                    });
                }
                let cand = in_form.add(&self.arc_form(row + k));
                match acc {
                    None => {
                        acc = Some(cand);
                        out_w.push(1.0);
                    }
                    Some(prev) => {
                        let (mut m, t) = prev.max(&cand);
                        m.key_residual(resid_key_base + (row + k) as u32);
                        for w in &mut out_w[w0..] {
                            *w *= t;
                        }
                        out_w.push(1.0 - t);
                        acc = Some(m);
                    }
                }
            }
            let form = acc.ok_or_else(|| StaError::MissingArc {
                gate: gi,
                cell: self.core.lib.cells[self.core.cell_idx[gi] as usize]
                    .name
                    .clone(),
            })?;
            out_forms.push(form.truncated(self.opts.max_local_terms));
        }
        Ok(())
    }

    /// Write one gate's computed output forms and tightness weights back
    /// into the global arrays.
    fn commit_gate(
        &self,
        gi: usize,
        gate_forms: &[CanonicalForm],
        gate_w: &[f64],
        forms: &mut [CanonicalForm],
        weights: &mut [f64],
    ) {
        for (j, &out) in self.core.gate_outputs(gi).iter().enumerate() {
            forms[out as usize] = gate_forms[j].clone();
        }
        let arc_base = self.core.arc_off[gi] as usize;
        weights[arc_base..arc_base + gate_w.len()].copy_from_slice(gate_w);
    }

    /// Propagate one levelized stage, sharded exactly like the
    /// deterministic engine (same shard size, same worker rule, shard-order
    /// merge) so forms are bit-identical at any thread count.
    fn propagate_stage(
        &self,
        list: &[u32],
        forms: &mut [CanonicalForm],
        weights: &mut [f64],
    ) -> Result<(), StaError> {
        let workers = if self.core.threads == 1 {
            1
        } else {
            resolve_threads(self.core.threads)
        };
        if workers <= 1 || list.len() < MIN_PARALLEL_WIDTH {
            let mut out_forms = Vec::new();
            let mut out_w = Vec::new();
            for &g in list {
                let gi = g as usize;
                out_forms.clear();
                out_w.clear();
                self.eval_gate(gi, forms, &mut out_forms, &mut out_w)?;
                self.commit_gate(gi, &out_forms, &out_w, forms, weights);
            }
            return Ok(());
        }
        let shards: Vec<ShardOutput> = run_shards(list.len(), SHARD_GATES, workers, |_, range| {
            let mut out_forms = Vec::new();
            let mut out_w = Vec::new();
            for &g in &list[range] {
                self.eval_gate(g as usize, forms, &mut out_forms, &mut out_w)?;
            }
            Ok((out_forms, out_w))
        });
        // Merge in shard order: the same commit order as the serial path.
        // Shard boundaries are a pure function of (len, SHARD_GATES).
        for (s, shard) in shards.into_iter().enumerate() {
            let (shard_forms, shard_w) = shard?;
            let lo = s * SHARD_GATES;
            let hi = ((s + 1) * SHARD_GATES).min(list.len());
            let mut fi = 0usize;
            let mut wi = 0usize;
            for &g in &list[lo..hi] {
                let gi = g as usize;
                let n_out = self.core.gate_outputs(gi).len();
                let n_w = self.gate_weight_len(gi);
                self.commit_gate(
                    gi,
                    &shard_forms[fi..fi + n_out],
                    &shard_w[wi..wi + n_w],
                    forms,
                    weights,
                );
                fi += n_out;
                wi += n_w;
            }
        }
        Ok(())
    }

    /// Run the full statistical analysis: forward propagation, endpoint
    /// fold, and backward criticality.
    ///
    /// # Errors
    ///
    /// Propagation errors ([`StaError::MalformedGate`],
    /// [`StaError::MissingArc`]) if the graph state is inconsistent.
    pub fn analyze(&self) -> Result<SstaReport, StaError> {
        let _span = varitune_trace::span!("sta.ssta.analyze");
        varitune_trace::add("sta.ssta.analyses", 1);
        let core = self.core;
        let n_nets = core.nets.len();
        let mut forms: Vec<CanonicalForm> = (0..n_nets)
            .map(|ni| {
                if core.driver[ni] == NONE_U32 {
                    CanonicalForm::deterministic(core.nets[ni].arrival)
                } else {
                    CanonicalForm::deterministic(f64::NEG_INFINITY)
                }
            })
            .collect();
        let mut weights = vec![0.0f64; core.arcs.len()];
        let n_stages = self.stage_off.len() - 1;
        for s in 0..n_stages {
            let list = &self.schedule[self.stage_off[s] as usize..self.stage_off[s + 1] as usize];
            if list.is_empty() {
                continue;
            }
            self.propagate_stage(list, &mut forms, &mut weights)?;
        }

        // Endpoint fold: W = max over endpoints of (arrival − required +
        // period), the minimum feasible clock period. The tightness
        // weights of the fold are each endpoint's criticality.
        let t_clk = core.config.effective_period();
        let n_ep = core.endpoints.len();
        let mut design: Option<CanonicalForm> = None;
        let mut ep_w = vec![0.0f64; n_ep];
        for (e, ep) in core.endpoints.iter().enumerate() {
            let shifted = forms[ep.net.0 as usize].shift(t_clk - ep.required);
            match design {
                None => {
                    design = Some(shifted);
                    ep_w[e] = 1.0;
                }
                Some(prev) => {
                    let (m, t) = prev.max(&shifted);
                    for w in &mut ep_w[..e] {
                        *w *= t;
                    }
                    ep_w[e] = 1.0 - t;
                    design = Some(m.truncated(self.opts.max_local_terms));
                }
            }
        }
        let design = design.unwrap_or_else(|| CanonicalForm::deterministic(f64::NEG_INFINITY));

        let endpoints: Vec<SstaEndpoint> = core
            .endpoints
            .iter()
            .enumerate()
            .map(|(e, ep)| {
                let form = &forms[ep.net.0 as usize];
                SstaEndpoint {
                    net: ep.net,
                    mean: form.mean,
                    sigma: form.sigma(),
                    required: ep.required,
                    criticality: ep_w[e],
                }
            })
            .collect();

        // Backward criticality: seed endpoint nets with the fold weights,
        // then walk stages in reverse multiplying by arc tightness.
        let mut net_crit = vec![0.0f64; n_nets];
        for (e, ep) in core.endpoints.iter().enumerate() {
            net_crit[ep.net.0 as usize] += ep_w[e];
        }
        let mut gate_crit = vec![0.0f64; core.n_gates()];
        for s in (0..n_stages).rev() {
            let list = &self.schedule[self.stage_off[s] as usize..self.stage_off[s + 1] as usize];
            for &g in list {
                let gi = g as usize;
                let outs = core.gate_outputs(gi);
                let mut c = 0.0;
                for &out in outs {
                    c += net_crit[out as usize];
                }
                gate_crit[gi] = c;
                if core.is_seq[gi] || c == 0.0 {
                    continue;
                }
                let inputs = core.gate_inputs(gi);
                let n_in = inputs.len();
                let arc_base = core.arc_off[gi] as usize;
                for (j, &out) in outs.iter().enumerate() {
                    let co = net_crit[out as usize];
                    if co == 0.0 {
                        continue;
                    }
                    for (k, &inp) in inputs.iter().enumerate() {
                        let w = weights[arc_base + j * n_in + k];
                        if w != 0.0 {
                            net_crit[inp as usize] += co * w;
                        }
                    }
                }
            }
        }

        Ok(SstaReport {
            corner: self.opts.corner,
            mode: self.opts.mode,
            sigma_scale: self.opts.sigma_scale,
            clock_period: t_clk,
            endpoints,
            design,
            gate_criticality: gate_crit,
            arrivals: forms,
        })
    }

    /// Graph-level Monte Carlo over the *same* arc model: each trial
    /// samples a die factor plus one local factor per arc and re-runs the
    /// deterministic max propagation. Trials are chunked with a fixed
    /// chunk size and their moments merged in chunk order, so the result
    /// is bit-identical at any thread count. This is the oracle the
    /// differential suite compares SSTA moments against.
    ///
    /// # Errors
    ///
    /// [`StaError::InvalidParameter`] for `trials == 0` or an invalid
    /// sampling distribution (degenerate sigma inputs).
    pub fn monte_carlo(
        &self,
        trials: usize,
        seed: u64,
        threads: usize,
    ) -> Result<GraphMcResult, StaError> {
        if trials == 0 {
            return Err(StaError::InvalidParameter {
                reason: "Monte Carlo needs at least one trial, got 0".to_string(),
            });
        }
        let _span = varitune_trace::span!("sta.ssta.mc");
        varitune_trace::add("sta.ssta.mc_trials", trials as u64);
        let core = self.core;
        let f = self.opts.corner.delay_factor();
        let die_dist = match self.opts.mode {
            VariationMode::GlobalAndLocal => Some(
                Normal::new(
                    f,
                    f * self.opts.corner.global_rel_sigma() * self.opts.sigma_scale,
                )
                .map_err(|e| StaError::InvalidParameter {
                    reason: format!("die distribution: {e}"),
                })?,
            ),
            VariationMode::LocalOnly => None,
        };
        let local: Vec<Normal> = self
            .arc_rel
            .iter()
            .map(|&rel| {
                Normal::new(1.0, rel).map_err(|e| StaError::InvalidParameter {
                    reason: format!("local arc distribution: {e}"),
                })
            })
            .collect::<Result<_, _>>()?;
        let n_nets = core.nets.len();
        let base: Vec<f64> = (0..n_nets)
            .map(|ni| {
                if core.driver[ni] == NONE_U32 {
                    core.nets[ni].arrival
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        let t_clk = core.config.effective_period();
        let n_ep = core.endpoints.len();
        let stream = derive_seed(
            seed,
            "ssta-graph-mc",
            (self.opts.corner as u64) ^ ((self.opts.mode as u64) << 8),
        );
        let workers = if threads == 1 {
            1
        } else {
            resolve_threads(threads)
        };
        let n_chunks = trials.div_ceil(MC_CHUNK);
        let n_stages = self.stage_off.len() - 1;
        let chunk_stats: Vec<(Vec<Welford>, Welford)> = run_trials(n_chunks, workers, |chunk| {
            let lo = chunk * MC_CHUNK;
            let hi = ((chunk + 1) * MC_CHUNK).min(trials);
            let mut ep_acc = vec![Welford::default(); n_ep];
            let mut w_acc = Welford::default();
            let mut arrivals = base.clone();
            for t in lo..hi {
                let mut rng = rng_from(stream, "trial", t as u64);
                let die = match die_dist {
                    Some(d) => d.sample(&mut rng).max(0.05) / f,
                    None => 1.0,
                };
                arrivals.copy_from_slice(&base);
                for s in 0..n_stages {
                    let list =
                        &self.schedule[self.stage_off[s] as usize..self.stage_off[s + 1] as usize];
                    for &g in list {
                        let gi = g as usize;
                        let inputs = core.gate_inputs(gi);
                        let outs = core.gate_outputs(gi);
                        let n_in = inputs.len();
                        let arc_base = core.arc_off[gi] as usize;
                        if core.is_seq[gi] {
                            for (j, &out) in outs.iter().enumerate() {
                                let ai = arc_base + j;
                                let lf = local[ai].sample(&mut rng).max(0.05);
                                arrivals[out as usize] = self.arc_mean[ai] * die * lf;
                            }
                        } else {
                            for (j, &out) in outs.iter().enumerate() {
                                let row = arc_base + j * n_in;
                                let mut best = f64::NEG_INFINITY;
                                for (k, &inp) in inputs.iter().enumerate() {
                                    let ai = row + k;
                                    let lf = local[ai].sample(&mut rng).max(0.05);
                                    let cand =
                                        arrivals[inp as usize] + self.arc_mean[ai] * die * lf;
                                    if cand > best {
                                        best = cand;
                                    }
                                }
                                arrivals[out as usize] = best;
                            }
                        }
                    }
                }
                let mut w_trial = f64::NEG_INFINITY;
                for (e, ep) in core.endpoints.iter().enumerate() {
                    let v = arrivals[ep.net.0 as usize];
                    ep_acc[e].push(v);
                    let slackless = v + (t_clk - ep.required);
                    if slackless > w_trial {
                        w_trial = slackless;
                    }
                }
                if n_ep > 0 {
                    w_acc.push(w_trial);
                }
            }
            (ep_acc, w_acc)
        });
        let mut ep_total = vec![Welford::default(); n_ep];
        let mut w_total = Welford::default();
        for (ep_acc, w_acc) in chunk_stats {
            for (e, acc) in ep_acc.into_iter().enumerate() {
                ep_total[e] = ep_total[e].merge(acc);
            }
            w_total = w_total.merge(w_acc);
        }
        Ok(GraphMcResult {
            trials,
            endpoint_mean: ep_total.iter().map(|w| w.mean).collect(),
            endpoint_sigma: ep_total.iter().map(Welford::sigma).collect(),
            design_mean: w_total.mean,
            design_sigma: w_total.sigma(),
        })
    }
}

/// Build the model and run the analysis in one call.
///
/// # Errors
///
/// See [`SstaModel::build`] and [`SstaModel::analyze`].
pub fn analyze_ssta(
    graph: &TimingGraph<'_>,
    stat: &StatLibrary,
    opts: SstaOptions,
) -> Result<SstaReport, StaError> {
    SstaModel::build(graph, stat, opts)?.analyze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StaConfig;
    use crate::mapped::{MappedDesign, WireModel};
    use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn stat_fixture() -> StatLibrary {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let mc = generate_mc_libraries(&nominal, &cfg, 25, 7);
        StatLibrary::from_libraries(&mc).unwrap()
    }

    /// Two reconvergent chains of unequal depth into a shared endpoint
    /// structure: enough topology to exercise Clark max and criticality.
    fn two_chain_netlist() -> (Netlist, Vec<&'static str>) {
        let mut nl = Netlist::new("ssta-two-chains");
        let a = nl.add_input("a");
        let mut prev = a;
        for i in 0..3 {
            let z = nl.add_net(format!("s{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        let b = nl.add_input("b");
        let mut prev = b;
        for i in 0..9 {
            let z = nl.add_net(format!("l{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        (nl, vec!["INV_2"; 12])
    }

    fn graph_fixture<'l>(stat: &'l StatLibrary, threads: usize) -> TimingGraph<'l> {
        let (nl, names) = two_chain_netlist();
        let design =
            MappedDesign::from_names(nl, &names, &stat.mean, WireModel::default()).unwrap();
        let config = StaConfig::with_clock_period(5.0);
        let mut graph = TimingGraph::new(design, &stat.mean, &config).unwrap();
        graph.set_threads(threads);
        graph
    }

    fn form(mean: f64, sens: &[(u32, f64)], resid: f64) -> CanonicalForm {
        CanonicalForm {
            mean,
            sens: sens.to_vec(),
            resid,
        }
    }

    #[test]
    fn add_is_commutative_bitwise() {
        let a = form(1.25, &[(0, 0.5), (3, 0.25)], 0.125);
        let b = form(2.5, &[(0, 0.25), (7, 0.5)], 0.5);
        assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_merges_shared_keys_and_keeps_disjoint_ones() {
        let a = form(1.0, &[(0, 0.5), (2, 0.25)], 0.0);
        let b = form(2.0, &[(0, 0.5), (5, 1.0)], 0.0);
        let s = a.add(&b);
        assert_eq!(s.sens, vec![(0, 1.0), (2, 0.25), (5, 1.0)]);
    }

    #[test]
    fn sigma_is_non_negative_and_quadrature() {
        let a = form(0.0, &[(1, 3.0), (2, 4.0)], 0.0);
        assert!((a.sigma() - 5.0).abs() < 1e-12);
        let b = form(0.0, &[], 2.0);
        assert!((b.add(&a).sigma() - 29.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_is_monotone_in_mean() {
        let a = form(1.0, &[(0, 0.1)], 0.05);
        let b = form(1.2, &[(0, 0.08)], 0.07);
        let (m, _) = a.max(&b);
        assert!(m.mean >= a.mean && m.mean >= b.mean);
        let b_hi = b.shift(0.5);
        let (m_hi, _) = a.max(&b_hi);
        assert!(m_hi.mean > m.mean);
    }

    #[test]
    fn max_of_identical_forms_is_exact() {
        // Two copies of one path share every source: cov equals variance,
        // theta is 0, and the max must be the form itself (not inflated).
        let a = form(3.0, &[(0, 0.2), (4, 0.6)], 0.0);
        let (m, t) = a.max(&a.clone());
        assert_eq!(m, a);
        assert_eq!(t, 1.0);
    }

    #[test]
    fn truncation_keeps_global_and_largest_locals_and_preserves_variance() {
        let f = form(
            1.0,
            &[(0, 0.05), (1, 0.4), (2, 0.1), (3, 0.3), (4, 0.2)],
            0.1,
        );
        let var = f.variance();
        let t = f.truncated(2);
        assert_eq!(
            t.sens.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
            vec![0, 1, 3],
            "global key plus the two largest locals survive"
        );
        assert!((t.variance() - var).abs() < 1e-12, "variance is preserved");
        assert!(t.resid > 0.1, "folded tail lands in the residual");
    }

    #[test]
    fn degenerate_max_picks_larger_mean_and_acc_wins_ties() {
        let a = CanonicalForm::deterministic(1.0);
        let b = CanonicalForm::deterministic(2.0);
        let (m, t) = a.max(&b);
        assert_eq!(m.mean, 2.0);
        assert_eq!(t, 0.0);
        let c = CanonicalForm::deterministic(2.0);
        let (m2, t2) = b.max(&c);
        assert_eq!(m2, b);
        assert_eq!(t2, 1.0);
    }

    #[test]
    fn zero_sigma_reduces_to_deterministic_sta_bit_exactly() {
        let stat = stat_fixture();
        let graph = graph_fixture(&stat, 1);
        let opts = SstaOptions {
            sigma_scale: 0.0,
            ..SstaOptions::default()
        };
        let report = analyze_ssta(&graph, &stat, opts).unwrap();
        for ni in 0..report.arrivals.len() {
            let det = graph.net_timing(NetId(ni as u32)).arrival;
            let ssta_mean = report.arrivals[ni].mean;
            if det.is_finite() || ssta_mean.is_finite() {
                assert_eq!(
                    det.to_bits(),
                    ssta_mean.to_bits(),
                    "net {ni}: deterministic {det} vs ssta mean {ssta_mean}"
                );
            }
            assert_eq!(report.arrivals[ni].sigma(), 0.0);
        }
    }

    #[test]
    fn criticality_sums_to_one() {
        let stat = stat_fixture();
        let graph = graph_fixture(&stat, 1);
        let report = analyze_ssta(&graph, &stat, SstaOptions::default()).unwrap();
        assert!(
            (report.criticality_sum() - 1.0).abs() < 1e-9,
            "criticality sum {}",
            report.criticality_sum()
        );
        for &c in &report.gate_criticality {
            assert!(c >= -1e-12, "negative gate criticality {c}");
        }
    }

    #[test]
    fn ssta_moments_match_graph_mc() {
        let stat = stat_fixture();
        let graph = graph_fixture(&stat, 1);
        let model = SstaModel::build(&graph, &stat, SstaOptions::default()).unwrap();
        let report = model.analyze().unwrap();
        let mc = model.monte_carlo(2000, 42, 1).unwrap();
        for (e, ep) in report.endpoints.iter().enumerate() {
            let m_err = (ep.mean - mc.endpoint_mean[e]).abs() / mc.endpoint_mean[e].abs().max(1e-9);
            assert!(
                m_err < 0.02,
                "endpoint {e}: ssta mean {} vs mc {} (rel {m_err})",
                ep.mean,
                mc.endpoint_mean[e]
            );
            if mc.endpoint_sigma[e] > 1e-9 {
                let s_err = (ep.sigma - mc.endpoint_sigma[e]).abs() / mc.endpoint_sigma[e];
                assert!(
                    s_err < 0.05,
                    "endpoint {e}: ssta sigma {} vs mc {} (rel {s_err})",
                    ep.sigma,
                    mc.endpoint_sigma[e]
                );
            }
        }
    }

    #[test]
    fn graph_mc_is_bit_identical_across_threads_and_reruns() {
        let stat = stat_fixture();
        let graph = graph_fixture(&stat, 1);
        let model = SstaModel::build(&graph, &stat, SstaOptions::default()).unwrap();
        let r1 = model.monte_carlo(512, 7, 1).unwrap();
        let r2 = model.monte_carlo(512, 7, 2).unwrap();
        let r8 = model.monte_carlo(512, 7, 8).unwrap();
        let r1b = model.monte_carlo(512, 7, 1).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r8);
        assert_eq!(r1, r1b);
    }

    #[test]
    fn analyze_is_bit_identical_across_threads() {
        let stat = stat_fixture();
        let mut digests = Vec::new();
        for &threads in &[1usize, 2, 8] {
            let graph = graph_fixture(&stat, threads);
            let report = analyze_ssta(&graph, &stat, SstaOptions::default()).unwrap();
            digests.push(report.digest());
        }
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
    }

    #[test]
    fn yield_is_monotone_and_period_at_yield_inverts() {
        let stat = stat_fixture();
        let graph = graph_fixture(&stat, 1);
        let report = analyze_ssta(&graph, &stat, SstaOptions::default()).unwrap();
        let y_lo = report.yield_at(report.design_mean() - report.design_sigma());
        let y_mid = report.yield_at(report.design_mean());
        let y_hi = report.yield_at(report.design_mean() + report.design_sigma());
        assert!(y_lo <= y_mid && y_mid <= y_hi);
        assert!(report.design_sigma() > 0.0);
        let p = report.period_at_yield(0.95, 1e-9).unwrap();
        assert!((report.yield_at(p) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn period_at_yield_rejects_bad_target_without_panicking() {
        let report = SstaReport {
            corner: ProcessCorner::Typical,
            mode: VariationMode::GlobalAndLocal,
            sigma_scale: 1.0,
            clock_period: 1.0,
            endpoints: Vec::new(),
            design: form(1.0, &[(0, 0.1)], 0.0),
            gate_criticality: Vec::new(),
            arrivals: Vec::new(),
        };
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            let err = report.period_at_yield(bad, 1e-9).unwrap_err();
            assert!(matches!(err, StaError::InvalidParameter { .. }));
        }
        let err = report.period_at_yield(0.5, 0.0).unwrap_err();
        assert!(matches!(err, StaError::InvalidParameter { .. }));
    }

    #[test]
    fn monte_carlo_rejects_zero_trials() {
        let stat = stat_fixture();
        let graph = graph_fixture(&stat, 1);
        let model = SstaModel::build(&graph, &stat, SstaOptions::default()).unwrap();
        let err = model.monte_carlo(0, 1, 1).unwrap_err();
        assert!(matches!(err, StaError::InvalidParameter { .. }));
    }

    #[test]
    fn build_rejects_bad_sigma_scale() {
        let stat = stat_fixture();
        let graph = graph_fixture(&stat, 1);
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            let opts = SstaOptions {
                sigma_scale: bad,
                ..SstaOptions::default()
            };
            let err = match SstaModel::build(&graph, &stat, opts) {
                Err(e) => e,
                Ok(_) => panic!("sigma_scale {bad} should be rejected"),
            };
            assert!(matches!(err, StaError::InvalidParameter { .. }));
        }
    }

    #[test]
    fn top_gate_criticalities_is_deterministically_ranked() {
        let stat = stat_fixture();
        let graph = graph_fixture(&stat, 1);
        let report = analyze_ssta(&graph, &stat, SstaOptions::default()).unwrap();
        let top = report.top_gate_criticalities(5);
        assert!(top.len() <= 5);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
            if pair[0].1 == pair[1].1 {
                assert!(pair[0].0 < pair[1].0);
            }
        }
    }
}
