//! Incremental interned timing engine.
//!
//! [`TimingGraph`] is built once per (design, library) pair and then kept
//! consistent across local edits instead of re-analyzing the whole netlist:
//!
//! * **Interning** — every cell, pin-capacitance and timing-arc reference
//!   is resolved to a dense index or `&TimingArc` at build time, so the
//!   propagation hot loop never compares strings or scans `Vec`s. LUT axes
//!   are validated once at library construction (see
//!   [`varitune_liberty::Lut::new`]), so interpolation is pure arithmetic.
//! * **Levelization** — combinational gates are assigned longest-path
//!   levels (`level = 1 + max(level of combinational drivers)`). Gates
//!   within one level are independent, which gives both a cached
//!   evaluation order and a safe unit of parallelism.
//! * **Dirty-cone re-propagation** — [`TimingGraph::resize_gate`],
//!   [`TimingGraph::split_fanout`] and [`TimingGraph::set_load`] mark only
//!   the directly affected nets and gates; [`TimingGraph::update`] then
//!   recomputes dirty net loads, re-evaluates dirty gates level by level,
//!   and follows a value change into a gate's fanout **only when the
//!   driving net's arrival or slew actually changed bits**. The cost of an
//!   edit is O(size of the changed cone), not O(netlist).
//! * **Deterministic parallelism** — within one level, dirty gates are
//!   evaluated with [`varitune_variation::parallel::run_trials`]. A gate's
//!   result depends only on frozen lower-level state, so the outcome is
//!   bit-identical for every thread count (including errors: results are
//!   applied in sorted gate order, so the first error is the same
//!   regardless of schedule).
//!
//! Equivalence contract: after any edit sequence followed by
//! [`TimingGraph::update`], [`TimingGraph::report`] is **bit-identical**
//! to a fresh [`crate::graph::analyze`] of the edited design (loads are
//! recomputed in exactly the summation order of
//! [`MappedDesign::net_loads`], and gate evaluation replays the same
//! floating-point operations in the same order). The `tests/` tree and
//! the `sta_harness` bench binary both assert this.

use varitune_liberty::{CellId, Library, TimingArc, TimingType};
use varitune_netlist::{GateKind, NetId, Netlist, ValidateNetlistError};
use varitune_variation::parallel::{resolve_threads, run_trials};

use crate::graph::{Endpoint, EndpointKind, NetTiming, StaConfig, StaError, TimingReport};
use crate::mapped::{MappedDesign, WireModel};

/// Minimum dirty gates *per worker* in a level before the engine fans
/// out: `run_trials` spawns scoped threads per call, and a level whose
/// evaluation is cheaper than the spawn must stay serial. Per-gate
/// evaluation is a few hundred nanoseconds, so the bar sits where the
/// saved work clearly beats a worst-case (~ms) thread-spawn cost.
const PARALLEL_GRAIN: usize = 1024;

/// Interned timing arcs of one gate.
enum GateArcs<'l> {
    /// Combinational: `per_output[j][k]` is the arc from input `k` to
    /// output `j`.
    Comb { per_output: Vec<Vec<&'l TimingArc>> },
    /// Sequential: one launch (clock-to-Q) arc per output, plus the setup
    /// constraint arc on the data pin when the library characterizes one.
    Seq {
        launch: Vec<&'l TimingArc>,
        setup: Option<&'l TimingArc>,
    },
}

/// Everything the propagation needs, with the netlist structure copied
/// into dense integer form. Split from [`TimingGraph`] so `analyze` can
/// run a full propagation against a borrowed design without cloning it.
struct Core<'l> {
    lib: &'l Library,
    config: StaConfig,
    threads: usize,
    wire_model: WireModel,

    // ---- interned structure ----
    cell_idx: Vec<usize>,
    is_seq: Vec<bool>,
    arcs: Vec<GateArcs<'l>>,
    /// `input_caps[g][k]`: capacitance of the cell pin behind gate input
    /// `k` (0 when the cell declares fewer pins, matching
    /// [`MappedDesign::net_loads`]).
    input_caps: Vec<Vec<f64>>,
    gate_inputs: Vec<Vec<u32>>,
    gate_outputs: Vec<Vec<u32>>,
    /// Longest-path level per gate; 0 for sequential gates.
    level: Vec<u32>,
    /// Gate sinks per net as `(gate, input position)`, sorted ascending —
    /// the exact accumulation order of [`MappedDesign::net_loads`].
    sinks: Vec<Vec<(u32, u32)>>,
    /// Primary-output taps per net (fanout contribution without pin cap).
    po_taps: Vec<u32>,
    /// Driving `(gate, output position)` per net.
    driver: Vec<Option<(u32, u32)>>,
    /// Endpoint indices attached to each net.
    ep_of_net: Vec<Vec<u32>>,
    /// Capturing flip-flop gate per endpoint (`None` for primary outputs).
    ep_gate: Vec<Option<usize>>,
    /// Endpoint index of a sequential gate's data input, per gate.
    seq_ep: Vec<Option<u32>>,

    // ---- timing state (valid as of the last `update`) ----
    loads: Vec<f64>,
    load_override: Vec<Option<f64>>,
    nets: Vec<NetTiming>,
    endpoints: Vec<Endpoint>,

    // ---- dirty tracking ----
    dirty_gates: Vec<u32>,
    dirty_gate: Vec<bool>,
    dirty_loads: Vec<u32>,
    dirty_load: Vec<bool>,
    dirty_eps: Vec<u32>,
    dirty_ep: Vec<bool>,
    last_recomputed: usize,
}

impl<'l> Core<'l> {
    fn build(
        nl: &Netlist,
        cells: &[CellId],
        wire_model: WireModel,
        lib: &'l Library,
        config: &StaConfig,
    ) -> Result<Self, StaError> {
        let n_gates = nl.gates.len();
        let n_nets = nl.nets.len();

        let mut cell_idx = Vec::with_capacity(n_gates);
        let mut is_seq = Vec::with_capacity(n_gates);
        let mut arcs = Vec::with_capacity(n_gates);
        let mut input_caps = Vec::with_capacity(n_gates);
        let mut gate_inputs = Vec::with_capacity(n_gates);
        let mut gate_outputs = Vec::with_capacity(n_gates);
        for (gi, g) in nl.gates.iter().enumerate() {
            let (ci, ga, caps) = intern_gate(lib, nl, gi, cells[gi])?;
            cell_idx.push(ci);
            is_seq.push(g.kind.is_sequential());
            arcs.push(ga);
            input_caps.push(caps);
            gate_inputs.push(g.inputs.iter().map(|n| n.0).collect());
            gate_outputs.push(g.outputs.iter().map(|n| n.0).collect());
        }

        let mut sinks: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n_nets];
        let mut po_taps = vec![0u32; n_nets];
        let mut driver: Vec<Option<(u32, u32)>> = vec![None; n_nets];
        for (gi, g) in nl.gates.iter().enumerate() {
            for (k, &inp) in g.inputs.iter().enumerate() {
                sinks[inp.0 as usize].push((gi as u32, k as u32));
            }
            for (j, &out) in g.outputs.iter().enumerate() {
                driver[out.0 as usize] = Some((gi as u32, j as u32));
            }
        }
        for &po in &nl.primary_outputs {
            po_taps[po.0 as usize] += 1;
        }

        // Endpoints in `analyze` order: flip-flop data inputs by gate
        // index, then primary outputs.
        let mut endpoints = Vec::new();
        let mut ep_of_net: Vec<Vec<u32>> = vec![Vec::new(); n_nets];
        let mut ep_gate = Vec::new();
        let mut seq_ep: Vec<Option<u32>> = vec![None; n_gates];
        for (gi, g) in nl.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                let Some(&d) = g.inputs.first() else {
                    return Err(StaError::MalformedGate {
                        gate: gi,
                        reason: "sequential gate has no data input".into(),
                    });
                };
                let e = endpoints.len() as u32;
                ep_of_net[d.0 as usize].push(e);
                ep_gate.push(Some(gi));
                seq_ep[gi] = Some(e);
                endpoints.push(Endpoint {
                    net: d,
                    kind: EndpointKind::FlipFlopData { gate: gi },
                    arrival: f64::NEG_INFINITY,
                    required: 0.0,
                });
            }
        }
        for &po in &nl.primary_outputs {
            let e = endpoints.len() as u32;
            ep_of_net[po.0 as usize].push(e);
            ep_gate.push(None);
            endpoints.push(Endpoint {
                net: po,
                kind: EndpointKind::PrimaryOutput,
                arrival: f64::NEG_INFINITY,
                required: 0.0,
            });
        }

        let mut nets = vec![NetTiming::unpropagated(); n_nets];
        // Launch points: primary inputs have fixed boundary timing.
        for &pi in &nl.primary_inputs {
            let t = &mut nets[pi.0 as usize];
            t.arrival = 0.0;
            t.slew = config.input_slew;
        }

        let n_eps = endpoints.len();
        let mut core = Self {
            lib,
            config: *config,
            threads: 1,
            wire_model,
            cell_idx,
            is_seq,
            arcs,
            input_caps,
            gate_inputs,
            gate_outputs,
            level: Vec::new(),
            sinks,
            po_taps,
            driver,
            ep_of_net,
            ep_gate,
            seq_ep,
            loads: vec![0.0; n_nets],
            load_override: vec![None; n_nets],
            nets,
            endpoints,
            dirty_gates: Vec::new(),
            dirty_gate: vec![false; n_gates],
            dirty_loads: Vec::new(),
            dirty_load: vec![false; n_nets],
            dirty_eps: Vec::new(),
            dirty_ep: vec![false; n_eps],
            last_recomputed: 0,
        };
        core.compute_levels()?;
        core.invalidate_all();
        varitune_trace::add("sta.graph_builds", 1);
        Ok(core)
    }

    /// Longest-path levelization over the combinational subgraph. The
    /// netlist was validated acyclic; an inconsistency is reported as a
    /// netlist error like [`crate::graph::topo_order`] does.
    fn compute_levels(&mut self) -> Result<(), StaError> {
        let n = self.cell_idx.len();
        let mut level = vec![0u32; n];
        let mut indeg = vec![0usize; n];
        for (gi, deg) in indeg.iter_mut().enumerate() {
            if self.is_seq[gi] {
                continue;
            }
            for &inp in &self.gate_inputs[gi] {
                if let Some((src, _)) = self.driver[inp as usize] {
                    if !self.is_seq[src as usize] {
                        *deg += 1;
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&gi| !self.is_seq[gi] && indeg[gi] == 0)
            .collect();
        let mut processed = 0usize;
        while let Some(gi) = queue.pop() {
            processed += 1;
            for &out in &self.gate_outputs[gi] {
                for &(sg, _) in &self.sinks[out as usize] {
                    let sg = sg as usize;
                    if self.is_seq[sg] {
                        continue;
                    }
                    level[sg] = level[sg].max(level[gi] + 1);
                    indeg[sg] -= 1;
                    if indeg[sg] == 0 {
                        queue.push(sg);
                    }
                }
            }
        }
        let comb_count = (0..n).filter(|&gi| !self.is_seq[gi]).count();
        if processed != comb_count {
            return Err(StaError::Netlist(
                ValidateNetlistError::CombinationalCycle {
                    net: "unknown".to_string(),
                },
            ));
        }
        self.level = level;
        Ok(())
    }

    fn mark_gate_dirty(&mut self, gi: usize) {
        if !self.dirty_gate[gi] {
            self.dirty_gate[gi] = true;
            self.dirty_gates.push(gi as u32);
        }
    }

    fn mark_load_dirty(&mut self, ni: usize) {
        if !self.dirty_load[ni] {
            self.dirty_load[ni] = true;
            self.dirty_loads.push(ni as u32);
        }
    }

    fn mark_ep_dirty(&mut self, e: usize) {
        if !self.dirty_ep[e] {
            self.dirty_ep[e] = true;
            self.dirty_eps.push(e as u32);
        }
    }

    fn invalidate_all(&mut self) {
        for ni in 0..self.loads.len() {
            self.mark_load_dirty(ni);
        }
        for gi in 0..self.cell_idx.len() {
            self.mark_gate_dirty(gi);
        }
        for e in 0..self.endpoints.len() {
            self.mark_ep_dirty(e);
        }
    }

    /// Load of one net in the exact summation order of
    /// [`MappedDesign::net_loads`]: sink pin caps by ascending (gate,
    /// position), then the wire cap — so incremental loads are
    /// bit-identical to a fresh full computation.
    fn compute_load(&self, ni: usize) -> f64 {
        if let Some(ov) = self.load_override[ni] {
            return ov;
        }
        let mut load = 0.0f64;
        for &(g, k) in &self.sinks[ni] {
            load += self.input_caps[g as usize][k as usize];
        }
        let fanout = self.sinks[ni].len() + self.po_taps[ni] as usize;
        load + self.wire_model.wire_cap(fanout)
    }

    /// Clock-to-Q launch of a sequential gate (one [`NetTiming`] per
    /// output), identical arithmetic to the launch block of the full
    /// analysis.
    fn eval_seq(&self, gi: usize) -> Result<Vec<NetTiming>, StaError> {
        let GateArcs::Seq { launch, .. } = &self.arcs[gi] else {
            unreachable!("eval_seq on a combinational gate");
        };
        let mut outs = Vec::with_capacity(launch.len());
        for (j, arc) in launch.iter().enumerate() {
            let out = self.gate_outputs[gi][j] as usize;
            let load = self.loads[out];
            let delay = arc.worst_delay(self.config.clock_slew, load)?;
            let slew = arc.worst_transition(self.config.clock_slew, load)?;
            outs.push(NetTiming {
                arrival: delay,
                slew,
                load,
                driver: Some(gi),
                out_pin: j,
                crit_input: None,
                cell_delay: delay,
                crit_input_slew: self.config.clock_slew,
            });
        }
        Ok(outs)
    }

    /// Worst-arrival evaluation of a combinational gate (one
    /// [`NetTiming`] per output), identical arithmetic to the topological
    /// loop of the full analysis.
    fn eval_comb(&self, gi: usize) -> Result<Vec<NetTiming>, StaError> {
        let GateArcs::Comb { per_output } = &self.arcs[gi] else {
            unreachable!("eval_comb on a sequential gate");
        };
        let inputs = &self.gate_inputs[gi];
        let mut outs = Vec::with_capacity(per_output.len());
        for (j, input_arcs) in per_output.iter().enumerate() {
            let out = self.gate_outputs[gi][j] as usize;
            let load = self.loads[out];
            let mut best: Option<NetTiming> = None;
            for (k, &inp) in inputs.iter().enumerate() {
                let in_t = self.nets[inp as usize];
                if !in_t.arrival.is_finite() {
                    return Err(StaError::MalformedGate {
                        gate: gi,
                        reason: format!(
                            "input #{k} has non-finite arrival {} during propagation",
                            in_t.arrival
                        ),
                    });
                }
                let arc = input_arcs[k];
                let delay = arc.worst_delay(in_t.slew, load)?;
                let arrival = in_t.arrival + delay;
                if best.is_none_or(|b| arrival > b.arrival) {
                    let slew = arc.worst_transition(in_t.slew, load)?;
                    best = Some(NetTiming {
                        arrival,
                        slew,
                        load,
                        driver: Some(gi),
                        out_pin: j,
                        crit_input: Some(k),
                        cell_delay: delay,
                        crit_input_slew: in_t.slew,
                    });
                }
            }
            outs.push(best.ok_or_else(|| StaError::MissingArc {
                gate: gi,
                cell: self.lib.cells[self.cell_idx[gi]].name.clone(),
            })?);
        }
        Ok(outs)
    }

    /// Evaluates one level's dirty gates, across threads when the batch is
    /// large enough to amortize worker spawn. Results are in `list` order
    /// either way, so the outcome (including the first error) is
    /// schedule-independent.
    fn eval_comb_batch(&self, list: &[u32]) -> Vec<Result<Vec<NetTiming>, StaError>> {
        let threads = if self.threads == 1 {
            1
        } else {
            resolve_threads(self.threads)
        };
        if threads > 1 && list.len() >= PARALLEL_GRAIN * threads {
            run_trials(list.len(), threads, |i| self.eval_comb(list[i] as usize))
        } else {
            list.iter().map(|&g| self.eval_comb(g as usize)).collect()
        }
    }

    /// Writes a gate's freshly evaluated outputs and propagates dirtiness
    /// into the fanout of any output whose arrival or slew changed bits.
    fn apply_outputs(&mut self, gi: usize, outs: Vec<NetTiming>, buckets: &mut [Vec<u32>]) {
        for (j, nt) in outs.into_iter().enumerate() {
            let ni = self.gate_outputs[gi][j] as usize;
            let old = self.nets[ni];
            self.nets[ni] = nt;
            if old.arrival.to_bits() == nt.arrival.to_bits()
                && old.slew.to_bits() == nt.slew.to_bits()
            {
                continue; // converged: the cone below is clean
            }
            for s in 0..self.sinks[ni].len() {
                let (sg, _) = self.sinks[ni][s];
                let sg = sg as usize;
                // Sequential sinks capture (endpoint below); their launch
                // does not depend on the data input.
                if !self.is_seq[sg] && !self.dirty_gate[sg] {
                    self.dirty_gate[sg] = true;
                    buckets[self.level[sg] as usize].push(sg as u32);
                }
            }
            for e in 0..self.ep_of_net[ni].len() {
                let e = self.ep_of_net[ni][e] as usize;
                self.mark_ep_dirty(e);
            }
        }
    }

    fn recompute_endpoint(&mut self, e: usize) {
        let net = self.endpoints[e].net.0 as usize;
        let arrival = self.nets[net].arrival;
        let required = match self.ep_gate[e] {
            Some(gi) => {
                let data_slew = self.nets[net].slew;
                let setup = match &self.arcs[gi] {
                    GateArcs::Seq { setup, .. } => {
                        setup.and_then(|a| a.worst_delay(data_slew, self.config.clock_slew).ok())
                    }
                    GateArcs::Comb { .. } => None,
                }
                .unwrap_or(self.config.setup_time);
                self.config.effective_period() - setup
            }
            None => self.config.effective_period(),
        };
        self.endpoints[e].arrival = arrival;
        self.endpoints[e].required = required;
    }

    /// Re-propagates everything marked dirty; no-op when clean.
    fn update(&mut self) -> Result<(), StaError> {
        self.last_recomputed = 0;
        let tracing = varitune_trace::enabled();

        // 1. Net loads, in ascending net order (summation order is fixed
        //    per net by `compute_load`; processing order only decides
        //    which drivers get marked first).
        if !self.dirty_loads.is_empty() {
            let mut list = std::mem::take(&mut self.dirty_loads);
            list.sort_unstable();
            for &ni in &list {
                let ni = ni as usize;
                self.dirty_load[ni] = false;
                let new = self.compute_load(ni);
                if new.to_bits() != self.loads[ni].to_bits() {
                    self.loads[ni] = new;
                    self.nets[ni].load = new;
                    if let Some((g, _)) = self.driver[ni] {
                        self.mark_gate_dirty(g as usize);
                    }
                }
            }
        }

        // 2. Bucket dirty gates by level (levels are frozen during an
        //    update: structural edits re-level before marking).
        let gate_list = std::mem::take(&mut self.dirty_gates);
        if !gate_list.is_empty() {
            let max_level = self.level.iter().copied().max().unwrap_or(0) as usize;
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
            let mut seq_list: Vec<u32> = Vec::new();
            for &g in &gate_list {
                if self.is_seq[g as usize] {
                    seq_list.push(g);
                } else {
                    buckets[self.level[g as usize] as usize].push(g);
                }
            }

            // 3. Launch points.
            seq_list.sort_unstable();
            for &g in &seq_list {
                let gi = g as usize;
                let outs = self.eval_seq(gi)?;
                self.apply_outputs(gi, outs, &mut buckets);
                self.dirty_gate[gi] = false;
                self.last_recomputed += 1;
            }

            // 4. Combinational cone, level by level. Dirtiness can only
            //    propagate to strictly higher levels, so a single
            //    ascending sweep converges.
            for lvl in 0..buckets.len() {
                let mut list = std::mem::take(&mut buckets[lvl]);
                if list.is_empty() {
                    continue;
                }
                list.sort_unstable();
                if tracing {
                    // Level-parallelism occupancy: how many dirty gates
                    // each ascending sweep offers `eval_comb_batch` at
                    // once. A function of the graph and the edit sequence
                    // only, never of the thread count.
                    varitune_trace::observe("sta.level_width", list.len() as u64);
                }
                let results = self.eval_comb_batch(&list);
                for (i, r) in results.into_iter().enumerate() {
                    let gi = list[i] as usize;
                    let outs = r?;
                    self.apply_outputs(gi, outs, &mut buckets);
                    self.dirty_gate[gi] = false;
                    self.last_recomputed += 1;
                }
            }
        }

        // 5. Endpoints.
        if !self.dirty_eps.is_empty() {
            let mut eps = std::mem::take(&mut self.dirty_eps);
            eps.sort_unstable();
            for &e in &eps {
                self.dirty_ep[e as usize] = false;
                self.recompute_endpoint(e as usize);
            }
        }
        if tracing {
            varitune_trace::add("sta.updates", 1);
            varitune_trace::add("sta.gates_recomputed", self.last_recomputed as u64);
            // Dirty-cone size distribution: how local each incremental
            // edit really was.
            varitune_trace::observe("sta.dirty_cone", self.last_recomputed as u64);
        }
        Ok(())
    }
}

/// Resolves gate `gi`'s cell, timing arcs and input-pin capacitances under
/// the typed `cell` id — a bounds check plus direct indexing, no name
/// lookup — surfacing the same errors (with the same gate index) the full
/// analysis would.
fn intern_gate<'l>(
    lib: &'l Library,
    nl: &Netlist,
    gi: usize,
    cell: CellId,
) -> Result<(usize, GateArcs<'l>, Vec<f64>), StaError> {
    let g = &nl.gates[gi];
    let ci = cell.index();
    if ci >= lib.cells.len() {
        return Err(StaError::UnknownCell {
            gate: gi,
            name: format!("cell#{}", cell.0),
        });
    }
    let cell = &lib.cells[ci];
    let missing = || StaError::MissingArc {
        gate: gi,
        cell: cell.name.clone(),
    };

    // Input-pin capacitances, positionally; a missing pin contributes 0,
    // exactly like `MappedDesign::net_loads`.
    let pins: Vec<_> = cell.input_pins().collect();
    let caps: Vec<f64> = (0..g.inputs.len())
        .map(|k| pins.get(k).map_or(0.0, |p| p.capacitance))
        .collect();

    let ga = if g.kind.is_sequential() {
        let mut launch = Vec::with_capacity(g.outputs.len());
        for j in 0..g.outputs.len() {
            let pin = cell.output_pins().nth(j).ok_or_else(missing)?;
            launch.push(pin.timing.first().ok_or_else(missing)?);
        }
        let setup = cell
            .input_pins()
            .find(|p| {
                p.timing
                    .iter()
                    .any(|a| a.timing_type == TimingType::SetupRising)
            })
            .and_then(|p| {
                p.timing
                    .iter()
                    .find(|a| a.timing_type == TimingType::SetupRising)
            });
        GateArcs::Seq { launch, setup }
    } else {
        if pins.len() < g.inputs.len() {
            return Err(missing());
        }
        let mut per_output = Vec::with_capacity(g.outputs.len());
        for j in 0..g.outputs.len() {
            let pin = cell.output_pins().nth(j).ok_or_else(missing)?;
            let mut row = Vec::with_capacity(g.inputs.len());
            for input_pin in pins.iter().take(g.inputs.len()) {
                let arc = pin
                    .timing
                    .iter()
                    .find(|a| a.related_pin == input_pin.name)
                    .ok_or_else(missing)?;
                row.push(arc);
            }
            per_output.push(row);
        }
        GateArcs::Comb { per_output }
    };
    Ok((ci, ga, caps))
}

/// Build-once incremental timing engine over an owned [`MappedDesign`].
///
/// Construct with [`TimingGraph::new`] (which runs a full propagation),
/// then apply local edits and call [`TimingGraph::update`]; queries like
/// [`TimingGraph::report`], [`TimingGraph::load`] and
/// [`TimingGraph::net_timing`] return the state **as of the last
/// `update`** — edits are not visible in timing values until then.
pub struct TimingGraph<'l> {
    design: MappedDesign,
    core: Core<'l>,
}

impl<'l> TimingGraph<'l> {
    /// Builds the engine and runs the initial full propagation.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] under the same conditions as
    /// [`crate::graph::analyze`].
    pub fn new(
        design: MappedDesign,
        lib: &'l Library,
        config: &StaConfig,
    ) -> Result<Self, StaError> {
        design.netlist.validate()?;
        let mut core = Core::build(
            &design.netlist,
            &design.cells,
            design.wire_model,
            lib,
            config,
        )?;
        core.update()?;
        Ok(Self { design, core })
    }

    /// Worker threads for within-level propagation (`0` = all available
    /// cores, `1` = serial). Results are bit-identical for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.core.threads = threads;
    }

    /// The design in its current (edited) state.
    pub fn design(&self) -> &MappedDesign {
        &self.design
    }

    /// Consumes the engine, returning the edited design.
    pub fn into_design(self) -> MappedDesign {
        self.design
    }

    /// The library the engine was built against.
    pub fn lib(&self) -> &'l Library {
        self.core.lib
    }

    /// The analysis configuration.
    pub fn config(&self) -> &StaConfig {
        &self.core.config
    }

    /// Number of gates (grows as buffers are inserted).
    pub fn gate_count(&self) -> usize {
        self.design.netlist.gates.len()
    }

    /// Cell name of gate `gi`, resolved through the library (ids always
    /// resolve here: they were validated when the gate was interned).
    pub fn cell_name(&self, gi: usize) -> &str {
        &self.core.lib.cells[self.core.cell_idx[gi]].name
    }

    /// Cell id of gate `gi`.
    pub fn cell_id(&self, gi: usize) -> CellId {
        self.design.cells[gi]
    }

    /// Load on `net` as of the last [`TimingGraph::update`].
    pub fn load(&self, net: NetId) -> f64 {
        self.core.loads[net.0 as usize]
    }

    /// All net loads as of the last [`TimingGraph::update`].
    pub fn loads(&self) -> &[f64] {
        &self.core.loads
    }

    /// Timing of `net` as of the last [`TimingGraph::update`].
    pub fn net_timing(&self, net: NetId) -> &NetTiming {
        &self.core.nets[net.0 as usize]
    }

    /// Endpoints as of the last [`TimingGraph::update`].
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.core.endpoints
    }

    /// Worst slack as of the last [`TimingGraph::update`].
    pub fn worst_slack(&self) -> f64 {
        self.core
            .endpoints
            .iter()
            .map(Endpoint::slack)
            .fold(f64::INFINITY, f64::min)
    }

    /// Structural fanout of `net` (gate sinks + primary-output taps);
    /// reflects edits immediately.
    pub fn fanout(&self, net: NetId) -> usize {
        let ni = net.0 as usize;
        self.core.sinks[ni].len() + self.core.po_taps[ni] as usize
    }

    /// Driving gate of `net`; reflects edits immediately.
    pub fn driver(&self, net: NetId) -> Option<usize> {
        self.core.driver[net.0 as usize].map(|(g, _)| g as usize)
    }

    /// Gates re-evaluated by the last [`TimingGraph::update`] — the dirty
    /// cone size, exposed for tests and the bench harness.
    pub fn gates_recomputed_in_last_update(&self) -> usize {
        self.core.last_recomputed
    }

    /// Snapshot of the current timing state as a [`TimingReport`],
    /// bit-identical to a fresh [`crate::graph::analyze`] of
    /// [`TimingGraph::design`] when the engine is clean (no edits since
    /// the last [`TimingGraph::update`]).
    pub fn report(&self) -> TimingReport {
        TimingReport {
            config: self.core.config,
            nets: self.core.nets.clone(),
            endpoints: self.core.endpoints.clone(),
        }
    }

    /// Re-propagates the dirty cone; cheap no-op when nothing changed.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] if a LUT evaluation fails. The engine state is
    /// unspecified (but memory-safe) after an error; discard it.
    pub fn update(&mut self) -> Result<(), StaError> {
        self.core.update()
    }

    /// Marks the whole graph dirty so the next [`TimingGraph::update`] is
    /// a full propagation — used by benches to time full re-analysis.
    pub fn invalidate_all(&mut self) {
        self.core.invalidate_all();
    }

    /// Re-maps gate `gi` onto `cell_name`, dirtying its input-net loads
    /// (pin capacitances changed) and the downstream cone.
    ///
    /// # Errors
    ///
    /// [`StaError::UnknownCell`]/[`StaError::MissingArc`] if the cell does
    /// not fit; the engine is unchanged on error.
    pub fn resize_gate(&mut self, gi: usize, cell_name: &str) -> Result<(), StaError> {
        let id = self
            .core
            .lib
            .cell_id(cell_name)
            .ok_or_else(|| StaError::UnknownCell {
                gate: gi,
                name: cell_name.to_string(),
            })?;
        self.resize_gate_id(gi, id)
    }

    /// Id-based [`TimingGraph::resize_gate`] — the sizing-loop entry
    /// point: no name lookup, no string compare.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::resize_gate`]; an out-of-range id reports
    /// [`StaError::UnknownCell`] with a `cell#<id>` label.
    pub fn resize_gate_id(&mut self, gi: usize, cell: CellId) -> Result<(), StaError> {
        if self.design.cells[gi] == cell {
            return Ok(());
        }
        let (ci, ga, caps) = intern_gate(self.core.lib, &self.design.netlist, gi, cell)?;
        self.design.cells[gi] = cell;
        self.core.cell_idx[gi] = ci;
        self.core.arcs[gi] = ga;
        self.core.input_caps[gi] = caps;
        for k in 0..self.core.gate_inputs[gi].len() {
            let inp = self.core.gate_inputs[gi][k] as usize;
            self.core.mark_load_dirty(inp);
        }
        self.core.mark_gate_dirty(gi);
        if let Some(e) = self.core.seq_ep[gi] {
            // The setup constraint arc changed with the cell.
            self.core.mark_ep_dirty(e as usize);
        }
        Ok(())
    }

    /// Overrides (or clears) the load seen on `net`, e.g. for boundary
    /// modeling in what-if analysis. Overridden nets ignore sink and wire
    /// capacitance until the override is cleared.
    pub fn set_load(&mut self, net: NetId, load: Option<f64>) {
        self.core.load_override[net.0 as usize] = load;
        self.core.mark_load_dirty(net.0 as usize);
    }

    /// Splits the fanout of `net` behind an INV→INV pair mapped to
    /// `inv_cell`, moving the second half of the gate sinks (by ascending
    /// gate index) onto the buffered copy — the synthesis buffering move.
    /// Returns the two new gate indices.
    ///
    /// # Errors
    ///
    /// [`StaError::UnknownCell`]/[`StaError::MissingArc`] if `inv_cell`
    /// cannot be interned; the engine is unchanged on error.
    pub fn split_fanout(&mut self, net: NetId, inv_cell: &str) -> Result<(usize, usize), StaError> {
        let gate = self.design.netlist.gates.len();
        let id = self
            .core
            .lib
            .cell_id(inv_cell)
            .ok_or_else(|| StaError::UnknownCell {
                gate,
                name: inv_cell.to_string(),
            })?;
        self.split_fanout_id(net, id)
    }

    /// Id-based [`TimingGraph::split_fanout`] — no name lookup in the
    /// buffering loop.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::split_fanout`].
    pub fn split_fanout_id(
        &mut self,
        net: NetId,
        inv_cell: CellId,
    ) -> Result<(usize, usize), StaError> {
        let ni = net.0 as usize;
        let all = self.core.sinks[ni].clone();
        let moved: Vec<(u32, u32)> = all[all.len() / 2..].to_vec();

        let nl = &mut self.design.netlist;
        let mid = nl.add_net(format!("{}_bufm", nl.net_name(net)));
        let out = nl.add_net(format!("{}_bufo", nl.net_name(net)));
        for &(g, k) in &moved {
            nl.gates[g as usize].inputs[k as usize] = out;
        }
        let g1 = nl.gates.len();
        nl.add_gate(GateKind::Inv, vec![net], vec![mid]);
        let g2 = nl.gates.len();
        nl.add_gate(GateKind::Inv, vec![mid], vec![out]);
        self.design.cells.push(inv_cell);
        self.design.cells.push(inv_cell);

        // Intern the new inverters (validates `inv_cell`; on failure the
        // netlist edit must be undone to keep the engine consistent).
        let interned =
            intern_gate(self.core.lib, &self.design.netlist, g1, inv_cell).and_then(|a| {
                intern_gate(self.core.lib, &self.design.netlist, g2, inv_cell).map(|b| (a, b))
            });
        let ((ci1, ga1, caps1), (ci2, ga2, caps2)) = match interned {
            Ok(v) => v,
            Err(e) => {
                let nl = &mut self.design.netlist;
                nl.gates.truncate(g1);
                nl.nets.truncate(mid.0 as usize);
                self.design.cells.truncate(g1);
                for &(g, k) in &moved {
                    self.design.netlist.gates[g as usize].inputs[k as usize] = net;
                }
                return Err(e);
            }
        };

        let core = &mut self.core;
        // Per-net arrays for `mid` and `out`.
        for _ in 0..2 {
            core.sinks.push(Vec::new());
            core.po_taps.push(0);
            core.driver.push(None);
            core.ep_of_net.push(Vec::new());
            core.loads.push(0.0);
            core.load_override.push(None);
            core.nets.push(NetTiming::unpropagated());
            core.dirty_load.push(false);
        }
        let (mi, oi) = (mid.0 as usize, out.0 as usize);
        core.driver[mi] = Some((g1 as u32, 0));
        core.driver[oi] = Some((g2 as u32, 0));
        core.sinks[mi] = vec![(g2 as u32, 0)];
        core.sinks[oi] = moved.clone();
        core.sinks[ni].truncate(all.len() / 2);
        core.sinks[ni].push((g1 as u32, 0));
        for &(g, k) in &moved {
            core.gate_inputs[g as usize][k as usize] = out.0;
        }

        // Per-gate arrays for the two inverters.
        core.cell_idx.push(ci1);
        core.cell_idx.push(ci2);
        core.is_seq.push(false);
        core.is_seq.push(false);
        core.arcs.push(ga1);
        core.arcs.push(ga2);
        core.input_caps.push(caps1);
        core.input_caps.push(caps2);
        core.gate_inputs.push(vec![net.0]);
        core.gate_inputs.push(vec![mid.0]);
        core.gate_outputs.push(vec![mid.0]);
        core.gate_outputs.push(vec![out.0]);
        core.seq_ep.push(None);
        core.seq_ep.push(None);
        core.dirty_gate.push(false);
        core.dirty_gate.push(false);

        // Endpoints attached to moved flip-flop data inputs follow their
        // net.
        for &(g, _) in &moved {
            if let Some(e) = core.seq_ep[g as usize] {
                let e = e as usize;
                core.endpoints[e].net = out;
                core.ep_of_net[ni].retain(|&x| x as usize != e);
                core.ep_of_net[oi].push(e as u32);
                core.mark_ep_dirty(e);
            }
        }

        // Structure changed: re-level before marking dirt.
        core.compute_levels()?;
        core.mark_load_dirty(ni);
        core.mark_load_dirty(mi);
        core.mark_load_dirty(oi);
        core.mark_gate_dirty(g1);
        core.mark_gate_dirty(g2);
        for &(g, _) in &moved {
            if !core.is_seq[g as usize] {
                core.mark_gate_dirty(g as usize);
            }
        }
        Ok((g1, g2))
    }

    /// Backward required-time propagation over the interned graph,
    /// bit-identical to [`crate::graph::required_times`] on the current
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] if a LUT evaluation fails.
    pub fn required_times(&self) -> Result<Vec<f64>, StaError> {
        let core = &self.core;
        let mut req = vec![f64::INFINITY; core.nets.len()];
        for ep in &core.endpoints {
            let r = &mut req[ep.net.0 as usize];
            *r = r.min(ep.required);
        }
        // Any reverse topological order gives bit-identical results (the
        // per-net fold is a min); descending level is one.
        let mut order: Vec<u32> = (0..core.cell_idx.len() as u32)
            .filter(|&g| !core.is_seq[g as usize])
            .collect();
        order.sort_unstable_by_key(|&g| (core.level[g as usize], g));
        for &g in order.iter().rev() {
            let gi = g as usize;
            let GateArcs::Comb { per_output } = &core.arcs[gi] else {
                unreachable!("order holds combinational gates only");
            };
            for (j, input_arcs) in per_output.iter().enumerate() {
                let out = core.gate_outputs[gi][j] as usize;
                let out_req = req[out];
                if !out_req.is_finite() {
                    continue;
                }
                let load = core.nets[out].load;
                for (k, arc) in input_arcs.iter().enumerate() {
                    let inp = core.gate_inputs[gi][k] as usize;
                    let delay = arc.worst_delay(core.nets[inp].slew, load)?;
                    let r = &mut req[inp];
                    *r = r.min(out_req - delay);
                }
            }
        }
        Ok(req)
    }
}

/// Full analysis of a borrowed design through the same engine core —
/// the implementation behind [`crate::graph::analyze`].
pub(crate) fn analyze_via_engine(
    design: &MappedDesign,
    lib: &Library,
    config: &StaConfig,
) -> Result<TimingReport, StaError> {
    design.netlist.validate()?;
    let mut core = Core::build(
        &design.netlist,
        &design.cells,
        design.wire_model,
        lib,
        config,
    )?;
    core.update()?;
    Ok(TimingReport {
        config: core.config,
        nets: core.nets,
        endpoints: core.endpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::analyze;
    use crate::mapped::WireModel;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn lib() -> Library {
        generate_nominal(&GenerateConfig::small_for_tests())
    }

    /// inv chain: a -> inv -> ... -> out, all `cell`.
    fn chain(n: usize, cell: &str, lib: &Library) -> MappedDesign {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for i in 0..n {
            let z = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        MappedDesign::from_names(nl, &vec![cell; n], lib, WireModel::default()).unwrap()
    }

    fn assert_reports_bit_identical(a: &TimingReport, b: &TimingReport) {
        assert_eq!(a.nets.len(), b.nets.len());
        for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits(), "net {i} arrival");
            assert_eq!(x.slew.to_bits(), y.slew.to_bits(), "net {i} slew");
            assert_eq!(x.load.to_bits(), y.load.to_bits(), "net {i} load");
            assert_eq!(x.driver, y.driver, "net {i} driver");
            assert_eq!(x.crit_input, y.crit_input, "net {i} crit_input");
            assert_eq!(
                x.cell_delay.to_bits(),
                y.cell_delay.to_bits(),
                "net {i} cell_delay"
            );
        }
        assert_eq!(a.endpoints.len(), b.endpoints.len());
        for (i, (x, y)) in a.endpoints.iter().zip(&b.endpoints).enumerate() {
            assert_eq!(x.net, y.net, "endpoint {i} net");
            assert_eq!(
                x.arrival.to_bits(),
                y.arrival.to_bits(),
                "endpoint {i} arrival"
            );
            assert_eq!(
                x.required.to_bits(),
                y.required.to_bits(),
                "endpoint {i} required"
            );
        }
    }

    #[test]
    fn fresh_engine_matches_analyze() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(2.0);
        let d = chain(8, "INV_2", &lib);
        let full = analyze(&d, &lib, &cfg).unwrap();
        let engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        assert_reports_bit_identical(&engine.report(), &full);
    }

    #[test]
    fn resize_retime_matches_fresh_analyze() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(2.0);
        let mut engine = TimingGraph::new(chain(10, "INV_2", &lib), &lib, &cfg).unwrap();
        engine.resize_gate(4, "INV_8").unwrap();
        engine.update().unwrap();
        let full = analyze(engine.design(), &lib, &cfg).unwrap();
        assert_reports_bit_identical(&engine.report(), &full);
    }

    #[test]
    fn resize_recomputes_only_the_dirty_cone() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        let mut engine = TimingGraph::new(chain(50, "INV_2", &lib), &lib, &cfg).unwrap();
        assert_eq!(engine.gates_recomputed_in_last_update(), 50);
        // Resizing gate 40 dirties its driver (input load changed) and
        // its downstream cone — a handful of gates, not the chain.
        engine.resize_gate(40, "INV_4").unwrap();
        engine.update().unwrap();
        let cone = engine.gates_recomputed_in_last_update();
        assert!(cone >= 2, "driver + resized gate at minimum: {cone}");
        assert!(cone <= 15, "cone should stay local: {cone}");
    }

    #[test]
    fn noop_update_recomputes_nothing() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        let mut engine = TimingGraph::new(chain(10, "INV_2", &lib), &lib, &cfg).unwrap();
        engine.update().unwrap();
        assert_eq!(engine.gates_recomputed_in_last_update(), 0);
        // Resizing to the current cell is a no-op, too.
        engine.resize_gate(3, "INV_2").unwrap();
        engine.update().unwrap();
        assert_eq!(engine.gates_recomputed_in_last_update(), 0);
    }

    #[test]
    fn split_fanout_matches_fresh_analyze() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        // One driver into 8 sinks, then split its net.
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let mut names = vec!["INV_1".to_string()];
        for i in 0..8 {
            let z = nl.add_net(format!("z{i}"));
            nl.add_gate(GateKind::Inv, vec![x], vec![z]);
            nl.mark_output(z);
            names.push("INV_2".into());
        }
        let d = MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap();
        let mut engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        let (g1, g2) = engine.split_fanout(x, "INV_2").unwrap();
        assert_eq!((g1, g2), (9, 10));
        engine.update().unwrap();
        engine.design().netlist.validate().unwrap();
        let full = analyze(engine.design(), &lib, &cfg).unwrap();
        assert_reports_bit_identical(&engine.report(), &full);
    }

    #[test]
    fn split_fanout_moves_flip_flop_endpoints() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        // inv -> {ff, ff, ff, ff}: splitting the inv's net moves two FF
        // data inputs (and their endpoints) onto the buffered copy.
        let mut nl = Netlist::new("fffan");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let mut names = vec!["INV_1".to_string()];
        for i in 0..4 {
            let q = nl.add_net(format!("q{i}"));
            nl.add_gate(GateKind::Dff, vec![x], vec![q]);
            nl.mark_output(q);
            names.push("DF_1".into());
        }
        let d = MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap();
        let mut engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        engine.split_fanout(x, "INV_2").unwrap();
        engine.update().unwrap();
        engine.design().netlist.validate().unwrap();
        let full = analyze(engine.design(), &lib, &cfg).unwrap();
        assert_reports_bit_identical(&engine.report(), &full);
    }

    #[test]
    fn set_load_override_propagates_and_clears() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        let d = chain(5, "INV_2", &lib);
        let x = d.netlist.gates[1].outputs[0];
        let mut engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        let before = engine.report();
        engine.set_load(x, Some(0.05));
        engine.update().unwrap();
        assert_eq!(engine.load(x).to_bits(), 0.05f64.to_bits());
        assert!(engine.worst_slack() < before.worst_slack());
        // Clearing the override restores the exact baseline state.
        engine.set_load(x, None);
        engine.update().unwrap();
        assert_reports_bit_identical(&engine.report(), &before);
    }

    #[test]
    fn required_times_match_free_function() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(2.0);
        let d = chain(6, "INV_2", &lib);
        let report = analyze(&d, &lib, &cfg).unwrap();
        let free = crate::graph::required_times(&d, &lib, &report).unwrap();
        let engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        let eng = engine.required_times().unwrap();
        assert_eq!(free.len(), eng.len());
        for (i, (a, b)) in free.iter().zip(&eng).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "net {i}");
        }
    }

    #[test]
    fn unknown_cell_resize_leaves_engine_intact() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(2.0);
        let mut engine = TimingGraph::new(chain(4, "INV_2", &lib), &lib, &cfg).unwrap();
        let before = engine.report();
        assert!(matches!(
            engine.resize_gate(2, "NOPE_9"),
            Err(StaError::UnknownCell { gate: 2, .. })
        ));
        engine.update().unwrap();
        assert_reports_bit_identical(&engine.report(), &before);
    }

    #[test]
    fn parallel_levels_are_bit_identical() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        // Wide design: enough independent inverters in one level to cross
        // the per-worker grain at 8 threads (1024 * 8 = 8192).
        let mut nl = Netlist::new("wide");
        let a = nl.add_input("a");
        let mut names = Vec::new();
        for i in 0..8448 {
            let z = nl.add_net(format!("z{i}"));
            nl.add_gate(GateKind::Inv, vec![a], vec![z]);
            nl.mark_output(z);
            names.push(if i % 3 == 0 {
                "INV_1".to_string()
            } else {
                "INV_2".into()
            });
        }
        let d = MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap();
        let reference = TimingGraph::new(d.clone(), &lib, &cfg).unwrap().report();
        for threads in [2, 8] {
            let mut engine = TimingGraph::new(d.clone(), &lib, &cfg).unwrap();
            engine.set_threads(threads);
            engine.invalidate_all();
            engine.update().unwrap();
            assert_reports_bit_identical(&engine.report(), &reference);
        }
    }
}
