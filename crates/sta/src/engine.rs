//! Incremental interned timing engine over flat CSR storage.
//!
//! [`TimingGraph`] is built once per (design, library) pair and then kept
//! consistent across local edits instead of re-analyzing the whole netlist:
//!
//! * **Interning** — every cell, pin-capacitance and timing-arc reference
//!   is resolved to a dense index or `&TimingArc` at build time, so the
//!   propagation hot loop never compares strings or scans `Vec`s. LUT axes
//!   are validated once at library construction (see
//!   [`varitune_liberty::Lut::new`]), so interpolation is pure arithmetic.
//!   Interning is memoized on (cell, pin shape): a million-gate sea holds
//!   only a few hundred distinct combinations, so arc resolution costs
//!   O(distinct cells), not O(gates).
//! * **Flat CSR structure** — connectivity, pin capacitances and arcs
//!   live in shared offset/payload arrays (`in_off`/`in_net`/`in_cap`,
//!   `out_off`/`out_net`, `arc_off`/`arcs`) instead of per-gate `Vec`s,
//!   and net sinks live in a `SinkArena`. Construction at a million
//!   gates allocates a dozen arrays, not millions of boxes, and the
//!   propagation loop walks contiguous memory.
//! * **Levelization** — combinational gates are assigned longest-path
//!   levels (`level = 1 + max(level of combinational drivers)`). Gates
//!   within one level are independent, which gives both a cached
//!   evaluation order and a safe unit of parallelism.
//! * **Sharded full propagation** — [`TimingGraph::invalidate_all`] arms a
//!   dedicated full-sweep path: a counting-sort stage schedule (launch
//!   stage, then one stage per combinational level) evaluated stage by
//!   stage. Wide stages are split into fixed `SHARD_GATES`-gate
//!   structural shards dispatched through
//!   [`varitune_variation::parallel::run_shards`]; each shard evaluates
//!   against the frozen lower-stage state into a private buffer, and the
//!   orchestrator then merges shard results into the global net state in
//!   shard order (the boundary-arrival exchange). Stages narrower than
//!   `MIN_PARALLEL_WIDTH` run inline — fan-out overhead would dominate.
//! * **Dirty-cone re-propagation** — [`TimingGraph::resize_gate`],
//!   [`TimingGraph::split_fanout`] and [`TimingGraph::set_load`] mark only
//!   the directly affected nets and gates; [`TimingGraph::update`] then
//!   recomputes dirty net loads, re-evaluates dirty gates level by level,
//!   and follows a value change into a gate's fanout **only when the
//!   driving net's arrival or slew actually changed bits**. The cost of an
//!   edit is O(size of the changed cone), not O(netlist).
//! * **Deterministic parallelism** — the shard decomposition and the
//!   decision to fan out depend only on the workload (stage width), never
//!   on the thread count; a gate's result depends only on frozen
//!   lower-level state; and results are merged in schedule order. The
//!   outcome — values, errors, and recorded trace metrics — is therefore
//!   bit-identical for every thread count.
//!
//! Equivalence contract: after any edit sequence followed by
//! [`TimingGraph::update`], [`TimingGraph::report`] is **bit-identical**
//! to a fresh [`crate::graph::analyze`] of the edited design (loads are
//! recomputed in exactly the summation order of
//! [`MappedDesign::net_loads`], and gate evaluation replays the same
//! floating-point operations in the same order). The `tests/` tree and
//! the `sta_harness` bench binary both assert this.
//!
//! The engine is storage-agnostic: [`TimingGraph::new`] builds over the
//! pointer-rich [`MappedDesign`], [`TimingGraph::new_soa`] over the
//! arena/SoA [`SoaDesign`] — both feed the same internal `Core` through
//! [`varitune_netlist::NetlistView`], so the two forms of one design are
//! bit-identical by construction.

use std::collections::HashMap;

use varitune_liberty::{CellId, Library, TimingArc, TimingType};
use varitune_netlist::{GateKind, NetId, NetlistEdit, NetlistView, ValidateNetlistError};
use varitune_variation::parallel::{resolve_threads, run_shards, run_trials};

use crate::graph::{Endpoint, EndpointKind, NetTiming, StaConfig, StaError, TimingReport};
use crate::mapped::{MappedDesign, SoaDesign, WireModel};

/// Sentinel for "no entry" in the `u32`-typed graph indices (`driver`,
/// `seq_ep`, `ep_gate`).
pub(crate) const NONE_U32: u32 = u32::MAX;

/// Gates per structural shard of a wide stage. The decomposition is a
/// function of the stage width alone, so shard boundaries — and every
/// metric recorded about them — are identical for all thread counts.
/// 256 gates is ~100 µs of evaluation: large enough to amortize dispatch,
/// small enough to load-balance a level across 8+ workers.
pub(crate) const SHARD_GATES: usize = 256;

/// Minimum stage/level width before the engine fans out (or, equivalently,
/// routes through the deterministic dispatch primitives at all). Narrow
/// levels — the overwhelming majority at paper scale — run inline: worker
/// spawn costs more than the saved evaluation below this width.
pub(crate) const MIN_PARALLEL_WIDTH: usize = 2048;

/// Per-net sink lists `(gate, input position)` in one flat arena.
///
/// Rows are laid out contiguously with explicit capacity; growing a row
/// past its capacity relocates it to the tail with doubled capacity (the
/// abandoned slots leak until the next full build — the usual slotted-arena
/// trade for O(1) amortized growth without a million row `Vec`s). Rows are
/// kept ascending by `(gate, position)`: the build fills them in gate
/// order, and the only edit that appends ([`TimingGraph::split_fanout`])
/// appends a gate with the highest index — so iteration order always
/// matches the load-accumulation order of [`MappedDesign::net_loads`].
struct SinkArena {
    off: Vec<u32>,
    len: Vec<u32>,
    cap: Vec<u32>,
    flat: Vec<(u32, u32)>,
}

impl SinkArena {
    /// Exact-capacity arena with empty rows, sized from a counting pass.
    fn from_counts(counts: &[u32]) -> Self {
        let mut off = Vec::with_capacity(counts.len());
        let mut total: u64 = 0;
        for &c in counts {
            off.push(total as u32);
            total += u64::from(c);
        }
        assert!(
            total <= u64::from(u32::MAX),
            "sink arena exceeds u32 offsets"
        );
        Self {
            off,
            len: vec![0; counts.len()],
            cap: counts.to_vec(),
            flat: vec![(0, 0); total as usize],
        }
    }

    fn n_sinks(&self, ni: usize) -> usize {
        self.len[ni] as usize
    }

    fn row(&self, ni: usize) -> &[(u32, u32)] {
        let off = self.off[ni] as usize;
        &self.flat[off..off + self.len[ni] as usize]
    }

    /// One sink without borrowing the arena beyond the call (lets callers
    /// interleave reads with mutation of sibling state).
    fn get(&self, ni: usize, s: usize) -> (u32, u32) {
        self.flat[self.off[ni] as usize + s]
    }

    fn push(&mut self, ni: usize, v: (u32, u32)) {
        if self.len[ni] == self.cap[ni] {
            let new_cap = (self.cap[ni] * 2).max(4);
            let old = self.off[ni] as usize;
            let n = self.len[ni] as usize;
            let new_off = self.flat.len();
            self.flat.extend_from_within(old..old + n);
            self.flat.resize(new_off + new_cap as usize, (0, 0));
            assert!(self.flat.len() <= u32::MAX as usize, "sink arena overflow");
            self.off[ni] = new_off as u32;
            self.cap[ni] = new_cap;
        }
        let at = self.off[ni] as usize + self.len[ni] as usize;
        self.flat[at] = v;
        self.len[ni] += 1;
    }

    /// Appends a whole new row (for a freshly added net) at the tail.
    fn add_row(&mut self, vals: &[(u32, u32)]) {
        assert!(self.flat.len() <= u32::MAX as usize, "sink arena overflow");
        self.off.push(self.flat.len() as u32);
        self.len.push(vals.len() as u32);
        self.cap.push(vals.len() as u32);
        self.flat.extend_from_slice(vals);
    }

    /// Shortens a row in place (capacity is retained).
    fn truncate(&mut self, ni: usize, new_len: usize) {
        debug_assert!(new_len <= self.len[ni] as usize);
        self.len[ni] = new_len as u32;
    }
}

/// One cell resolved against a concrete gate shape: dense cell index,
/// positional input-pin capacitances, flattened timing arcs
/// (combinational: output-major `n_out × n_in`; sequential: one launch arc
/// per output), and the setup constraint arc when characterized.
struct InternedCell<'l> {
    ci: u32,
    caps: Vec<f64>,
    arcs: Vec<&'l TimingArc>,
    setup: Option<&'l TimingArc>,
}

/// Resolves a cell id against a gate shape — a bounds check plus direct
/// indexing, no name lookup — surfacing the same errors (with the same
/// gate index) the full analysis would.
fn intern_cell<'l>(
    lib: &'l Library,
    gi: usize,
    cell: CellId,
    n_in: usize,
    n_out: usize,
    seq: bool,
) -> Result<InternedCell<'l>, StaError> {
    let ci = cell.index();
    if ci >= lib.cells.len() {
        return Err(StaError::UnknownCell {
            gate: gi,
            name: format!("cell#{}", cell.0),
        });
    }
    let cell = &lib.cells[ci];
    let missing = || StaError::MissingArc {
        gate: gi,
        cell: cell.name.clone(),
    };

    // Input-pin capacitances, positionally; a missing pin contributes 0,
    // exactly like `MappedDesign::net_loads`.
    let pins: Vec<_> = cell.input_pins().collect();
    let caps: Vec<f64> = (0..n_in)
        .map(|k| pins.get(k).map_or(0.0, |p| p.capacitance))
        .collect();

    let mut arcs: Vec<&'l TimingArc> = Vec::with_capacity(if seq { n_out } else { n_out * n_in });
    let mut setup = None;
    if seq {
        for j in 0..n_out {
            let pin = cell.output_pins().nth(j).ok_or_else(missing)?;
            arcs.push(pin.timing.first().ok_or_else(missing)?);
        }
        setup = cell
            .input_pins()
            .find(|p| {
                p.timing
                    .iter()
                    .any(|a| a.timing_type == TimingType::SetupRising)
            })
            .and_then(|p| {
                p.timing
                    .iter()
                    .find(|a| a.timing_type == TimingType::SetupRising)
            });
    } else {
        if pins.len() < n_in {
            return Err(missing());
        }
        for j in 0..n_out {
            let pin = cell.output_pins().nth(j).ok_or_else(missing)?;
            for input_pin in pins.iter().take(n_in) {
                let arc = pin
                    .timing
                    .iter()
                    .find(|a| a.related_pin == input_pin.name)
                    .ok_or_else(missing)?;
                arcs.push(arc);
            }
        }
    }
    Ok(InternedCell {
        ci: ci as u32,
        caps,
        arcs,
        setup,
    })
}

/// Everything the propagation needs, with the netlist structure copied
/// into dense CSR form. Split from [`TimingGraph`] so `analyze` can run a
/// full propagation against a borrowed design without cloning it, and
/// exposed `pub(crate)` so [`crate::ssta`] can propagate canonical forms
/// over the identical structure and schedule.
pub(crate) struct Core<'l> {
    pub(crate) lib: &'l Library,
    pub(crate) config: StaConfig,
    pub(crate) threads: usize,
    wire_model: WireModel,

    // ---- interned structure (per gate, CSR) ----
    pub(crate) cell_idx: Vec<u32>,
    pub(crate) is_seq: Vec<bool>,
    /// Longest-path level per gate; 0 for sequential gates.
    pub(crate) level: Vec<u32>,
    /// Input row of gate `g`: `in_net[in_off[g]..in_off[g+1]]`; `in_cap`
    /// shares the offsets (capacitance of the cell pin behind each input,
    /// 0 when the cell declares fewer pins, matching
    /// [`MappedDesign::net_loads`]).
    pub(crate) in_off: Vec<u32>,
    pub(crate) in_net: Vec<u32>,
    in_cap: Vec<f64>,
    /// Output row of gate `g`: `out_net[out_off[g]..out_off[g+1]]`.
    pub(crate) out_off: Vec<u32>,
    pub(crate) out_net: Vec<u32>,
    /// Arc row of gate `g`: combinational rows hold `n_out × n_in` arcs
    /// output-major; sequential rows hold one launch arc per output.
    pub(crate) arc_off: Vec<u32>,
    pub(crate) arcs: Vec<&'l TimingArc>,
    /// Setup constraint arc of a sequential gate's data pin (`None` for
    /// combinational gates or uncharacterized libraries).
    setup_arc: Vec<Option<&'l TimingArc>>,
    /// Endpoint index of a sequential gate's data input ([`NONE_U32`] for
    /// combinational gates).
    seq_ep: Vec<u32>,

    // ---- interned structure (per net) ----
    /// Gate sinks per net as `(gate, input position)`, ascending — the
    /// exact accumulation order of [`MappedDesign::net_loads`].
    sinks: SinkArena,
    /// Primary-output taps per net (fanout contribution without pin cap).
    po_taps: Vec<u32>,
    /// Driving gate per net ([`NONE_U32`] for primary inputs).
    pub(crate) driver: Vec<u32>,
    /// Endpoint indices attached to each net (sparse: almost all nets have
    /// none, so per-net `Vec`s beat an arena here).
    ep_of_net: Vec<Vec<u32>>,
    /// Capturing flip-flop gate per endpoint ([`NONE_U32`] for primary
    /// outputs).
    ep_gate: Vec<u32>,

    // ---- timing state (valid as of the last `update`) ----
    pub(crate) loads: Vec<f64>,
    load_override: Vec<Option<f64>>,
    pub(crate) nets: Vec<NetTiming>,
    pub(crate) endpoints: Vec<Endpoint>,

    // ---- dirty tracking ----
    /// Armed by [`Core::invalidate_all`]: the next update takes the
    /// sharded full-sweep path instead of draining dirty lists.
    all_dirty: bool,
    dirty_gates: Vec<u32>,
    dirty_gate: Vec<bool>,
    dirty_loads: Vec<u32>,
    dirty_load: Vec<bool>,
    dirty_eps: Vec<u32>,
    dirty_ep: Vec<bool>,
    last_recomputed: usize,
}

impl<'l> Core<'l> {
    fn build<V: NetlistView>(
        nl: &V,
        cells: &[CellId],
        wire_model: WireModel,
        lib: &'l Library,
        config: &StaConfig,
    ) -> Result<Self, StaError> {
        let n_gates = nl.gate_count();
        let n_nets = nl.net_count();

        let mut cell_idx: Vec<u32> = Vec::with_capacity(n_gates);
        let mut is_seq: Vec<bool> = Vec::with_capacity(n_gates);
        let mut in_off: Vec<u32> = Vec::with_capacity(n_gates + 1);
        in_off.push(0);
        let mut in_net: Vec<u32> = Vec::new();
        let mut in_cap: Vec<f64> = Vec::new();
        let mut out_off: Vec<u32> = Vec::with_capacity(n_gates + 1);
        out_off.push(0);
        let mut out_net: Vec<u32> = Vec::new();
        let mut arc_off: Vec<u32> = Vec::with_capacity(n_gates + 1);
        arc_off.push(0);
        let mut arcs: Vec<&'l TimingArc> = Vec::new();
        let mut setup_arc: Vec<Option<&'l TimingArc>> = Vec::with_capacity(n_gates);

        // Interning memoized on (cell, shape). The cache holds successes
        // only, so a failing gate always interns fresh and the error
        // carries the first failing gate index.
        let mut cache: HashMap<(usize, usize, usize, bool), InternedCell<'l>> = HashMap::new();
        assert_eq!(cells.len(), n_gates, "one cell id per gate required");
        for (gi, &cell) in cells.iter().enumerate() {
            let seq = nl.gate_kind(gi).is_sequential();
            let g_in = nl.gate_inputs(gi);
            let g_out = nl.gate_outputs(gi);
            let key = (cell.index(), g_in.len(), g_out.len(), seq);
            if let std::collections::hash_map::Entry::Vacant(e) = cache.entry(key) {
                let ic = intern_cell(lib, gi, cell, g_in.len(), g_out.len(), seq)?;
                e.insert(ic);
            }
            let ic = &cache[&key];
            cell_idx.push(ic.ci);
            is_seq.push(seq);
            in_net.extend(g_in.iter().map(|n| n.0));
            in_cap.extend_from_slice(&ic.caps);
            in_off.push(in_net.len() as u32);
            out_net.extend(g_out.iter().map(|n| n.0));
            out_off.push(out_net.len() as u32);
            arcs.extend_from_slice(&ic.arcs);
            arc_off.push(arcs.len() as u32);
            setup_arc.push(ic.setup);
        }
        assert!(
            in_net.len() <= u32::MAX as usize && arcs.len() <= u32::MAX as usize,
            "netlist exceeds u32 CSR offsets"
        );

        // Sinks: exact-capacity arena from a counting pass; filling in
        // gate order leaves every row ascending by (gate, position).
        let mut counts = vec![0u32; n_nets];
        for &inp in &in_net {
            counts[inp as usize] += 1;
        }
        let mut sinks = SinkArena::from_counts(&counts);
        let mut driver = vec![NONE_U32; n_nets];
        for gi in 0..n_gates {
            for (k, idx) in (in_off[gi] as usize..in_off[gi + 1] as usize).enumerate() {
                sinks.push(in_net[idx] as usize, (gi as u32, k as u32));
            }
            for idx in out_off[gi] as usize..out_off[gi + 1] as usize {
                driver[out_net[idx] as usize] = gi as u32;
            }
        }
        let mut po_taps = vec![0u32; n_nets];
        for &po in nl.primary_outputs() {
            po_taps[po.0 as usize] += 1;
        }

        // Endpoints in `analyze` order: flip-flop data inputs by gate
        // index, then primary outputs.
        let mut endpoints = Vec::new();
        let mut ep_of_net: Vec<Vec<u32>> = vec![Vec::new(); n_nets];
        let mut ep_gate: Vec<u32> = Vec::new();
        let mut seq_ep: Vec<u32> = vec![NONE_U32; n_gates];
        for gi in 0..n_gates {
            if !is_seq[gi] {
                continue;
            }
            let row = &in_net[in_off[gi] as usize..in_off[gi + 1] as usize];
            let Some(&d) = row.first() else {
                return Err(StaError::MalformedGate {
                    gate: gi,
                    reason: "sequential gate has no data input".into(),
                });
            };
            let e = endpoints.len() as u32;
            ep_of_net[d as usize].push(e);
            ep_gate.push(gi as u32);
            seq_ep[gi] = e;
            endpoints.push(Endpoint {
                net: NetId(d),
                kind: EndpointKind::FlipFlopData { gate: gi },
                arrival: f64::NEG_INFINITY,
                required: 0.0,
            });
        }
        for &po in nl.primary_outputs() {
            let e = endpoints.len() as u32;
            ep_of_net[po.0 as usize].push(e);
            ep_gate.push(NONE_U32);
            endpoints.push(Endpoint {
                net: po,
                kind: EndpointKind::PrimaryOutput,
                arrival: f64::NEG_INFINITY,
                required: 0.0,
            });
        }

        let mut nets = vec![NetTiming::unpropagated(); n_nets];
        // Launch points: primary inputs have fixed boundary timing.
        for &pi in nl.primary_inputs() {
            let t = &mut nets[pi.0 as usize];
            t.arrival = 0.0;
            t.slew = config.input_slew;
        }

        let n_eps = endpoints.len();
        let mut core = Self {
            lib,
            config: *config,
            threads: 1,
            wire_model,
            cell_idx,
            is_seq,
            level: Vec::new(),
            in_off,
            in_net,
            in_cap,
            out_off,
            out_net,
            arc_off,
            arcs,
            setup_arc,
            seq_ep,
            sinks,
            po_taps,
            driver,
            ep_of_net,
            ep_gate,
            loads: vec![0.0; n_nets],
            load_override: vec![None; n_nets],
            nets,
            endpoints,
            all_dirty: false,
            dirty_gates: Vec::new(),
            dirty_gate: vec![false; n_gates],
            dirty_loads: Vec::new(),
            dirty_load: vec![false; n_nets],
            dirty_eps: Vec::new(),
            dirty_ep: vec![false; n_eps],
            last_recomputed: 0,
        };
        core.compute_levels()?;
        core.invalidate_all();
        varitune_trace::add("sta.graph_builds", 1);
        Ok(core)
    }

    pub(crate) fn n_gates(&self) -> usize {
        self.cell_idx.len()
    }

    pub(crate) fn gate_inputs(&self, gi: usize) -> &[u32] {
        &self.in_net[self.in_off[gi] as usize..self.in_off[gi + 1] as usize]
    }

    pub(crate) fn gate_outputs(&self, gi: usize) -> &[u32] {
        &self.out_net[self.out_off[gi] as usize..self.out_off[gi + 1] as usize]
    }

    fn gate_arcs(&self, gi: usize) -> &[&'l TimingArc] {
        &self.arcs[self.arc_off[gi] as usize..self.arc_off[gi + 1] as usize]
    }

    /// Longest-path levelization over the combinational subgraph. The
    /// netlist was validated acyclic; an inconsistency is reported as a
    /// netlist error like [`crate::graph::topo_order`] does.
    fn compute_levels(&mut self) -> Result<(), StaError> {
        let n = self.n_gates();
        let mut level = vec![0u32; n];
        let mut indeg = vec![0u32; n];
        for (gi, deg) in indeg.iter_mut().enumerate() {
            if self.is_seq[gi] {
                continue;
            }
            for &inp in self.gate_inputs(gi) {
                let d = self.driver[inp as usize];
                if d != NONE_U32 && !self.is_seq[d as usize] {
                    *deg += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n)
            .filter(|&gi| !self.is_seq[gi] && indeg[gi] == 0)
            .collect();
        let mut processed = 0usize;
        while let Some(gi) = queue.pop() {
            processed += 1;
            for oi in self.out_off[gi] as usize..self.out_off[gi + 1] as usize {
                let out = self.out_net[oi] as usize;
                for s in 0..self.sinks.n_sinks(out) {
                    let (sg, _) = self.sinks.get(out, s);
                    let sg = sg as usize;
                    if self.is_seq[sg] {
                        continue;
                    }
                    level[sg] = level[sg].max(level[gi] + 1);
                    indeg[sg] -= 1;
                    if indeg[sg] == 0 {
                        queue.push(sg);
                    }
                }
            }
        }
        let comb_count = (0..n).filter(|&gi| !self.is_seq[gi]).count();
        if processed != comb_count {
            return Err(StaError::Netlist(
                ValidateNetlistError::CombinationalCycle {
                    net: "unknown".to_string(),
                },
            ));
        }
        self.level = level;
        Ok(())
    }

    fn mark_gate_dirty(&mut self, gi: usize) {
        if !self.dirty_gate[gi] {
            self.dirty_gate[gi] = true;
            self.dirty_gates.push(gi as u32);
        }
    }

    fn mark_load_dirty(&mut self, ni: usize) {
        if !self.dirty_load[ni] {
            self.dirty_load[ni] = true;
            self.dirty_loads.push(ni as u32);
        }
    }

    fn mark_ep_dirty(&mut self, e: usize) {
        if !self.dirty_ep[e] {
            self.dirty_ep[e] = true;
            self.dirty_eps.push(e as u32);
        }
    }

    /// Arms the full-sweep path: the next [`Core::update`] re-propagates
    /// the whole graph through the sharded schedule instead of draining
    /// per-item dirty lists (orders of magnitude cheaper at scale).
    fn invalidate_all(&mut self) {
        self.all_dirty = true;
    }

    /// Load of one net in the exact summation order of
    /// [`MappedDesign::net_loads`]: sink pin caps by ascending (gate,
    /// position), then the wire cap — so incremental loads are
    /// bit-identical to a fresh full computation.
    fn compute_load(&self, ni: usize) -> f64 {
        if let Some(ov) = self.load_override[ni] {
            return ov;
        }
        let mut load = 0.0f64;
        for &(g, k) in self.sinks.row(ni) {
            load += self.in_cap[self.in_off[g as usize] as usize + k as usize];
        }
        let fanout = self.sinks.n_sinks(ni) + self.po_taps[ni] as usize;
        load + self.wire_model.wire_cap(fanout)
    }

    /// Clock-to-Q launch of a sequential gate (one [`NetTiming`] per
    /// output appended to `outs`), identical arithmetic to the launch
    /// block of the full analysis.
    fn eval_seq_into(&self, gi: usize, outs: &mut Vec<NetTiming>) -> Result<(), StaError> {
        let launch = self.gate_arcs(gi);
        for (j, (&out, arc)) in self.gate_outputs(gi).iter().zip(launch).enumerate() {
            let load = self.loads[out as usize];
            let delay = arc.worst_delay(self.config.clock_slew, load)?;
            let slew = arc.worst_transition(self.config.clock_slew, load)?;
            outs.push(NetTiming {
                arrival: delay,
                slew,
                load,
                driver: Some(gi),
                out_pin: j,
                crit_input: None,
                cell_delay: delay,
                crit_input_slew: self.config.clock_slew,
            });
        }
        Ok(())
    }

    /// Worst-arrival evaluation of a combinational gate (one
    /// [`NetTiming`] per output appended to `outs`), identical arithmetic
    /// to the topological loop of the full analysis.
    fn eval_comb_into(&self, gi: usize, outs: &mut Vec<NetTiming>) -> Result<(), StaError> {
        let ins = self.gate_inputs(gi);
        let n_in = ins.len();
        let arcs = self.gate_arcs(gi);
        for (j, &out) in self.gate_outputs(gi).iter().enumerate() {
            let row = &arcs[j * n_in..(j + 1) * n_in];
            let load = self.loads[out as usize];
            let mut best: Option<NetTiming> = None;
            for (k, &inp) in ins.iter().enumerate() {
                let in_t = self.nets[inp as usize];
                if !in_t.arrival.is_finite() {
                    return Err(StaError::MalformedGate {
                        gate: gi,
                        reason: format!(
                            "input #{k} has non-finite arrival {} during propagation",
                            in_t.arrival
                        ),
                    });
                }
                let arc = row[k];
                let delay = arc.worst_delay(in_t.slew, load)?;
                let arrival = in_t.arrival + delay;
                if best.is_none_or(|b| arrival > b.arrival) {
                    let slew = arc.worst_transition(in_t.slew, load)?;
                    best = Some(NetTiming {
                        arrival,
                        slew,
                        load,
                        driver: Some(gi),
                        out_pin: j,
                        crit_input: Some(k),
                        cell_delay: delay,
                        crit_input_slew: in_t.slew,
                    });
                }
            }
            outs.push(best.ok_or_else(|| StaError::MissingArc {
                gate: gi,
                cell: self.lib.cells[self.cell_idx[gi] as usize].name.clone(),
            })?);
        }
        Ok(())
    }

    fn eval_gate_into(&self, gi: usize, outs: &mut Vec<NetTiming>) -> Result<(), StaError> {
        if self.is_seq[gi] {
            self.eval_seq_into(gi, outs)
        } else {
            self.eval_comb_into(gi, outs)
        }
    }

    fn eval_seq(&self, gi: usize) -> Result<Vec<NetTiming>, StaError> {
        let mut outs = Vec::with_capacity(self.gate_outputs(gi).len());
        self.eval_seq_into(gi, &mut outs)?;
        Ok(outs)
    }

    fn eval_comb(&self, gi: usize) -> Result<Vec<NetTiming>, StaError> {
        let mut outs = Vec::with_capacity(self.gate_outputs(gi).len());
        self.eval_comb_into(gi, &mut outs)?;
        Ok(outs)
    }

    /// Evaluates one level's dirty gates. Wide levels route through
    /// [`run_trials`] — unconditionally on width, never on the thread
    /// knob, so recorded trace metrics are thread-count-invariant; with
    /// `threads == 1` the dispatch degenerates to the serial loop.
    /// Results are in `list` order either way, so the outcome (including
    /// the first error) is schedule-independent.
    fn eval_comb_batch(&self, list: &[u32]) -> Vec<Result<Vec<NetTiming>, StaError>> {
        if list.len() >= MIN_PARALLEL_WIDTH {
            let workers = if self.threads == 1 {
                1
            } else {
                resolve_threads(self.threads)
            };
            run_trials(list.len(), workers, |i| self.eval_comb(list[i] as usize))
        } else {
            list.iter().map(|&g| self.eval_comb(g as usize)).collect()
        }
    }

    /// Writes a gate's freshly evaluated outputs and propagates dirtiness
    /// into the fanout of any output whose arrival or slew changed bits.
    fn apply_outputs(&mut self, gi: usize, outs: Vec<NetTiming>, buckets: &mut [Vec<u32>]) {
        let (o_lo, o_hi) = (self.out_off[gi] as usize, self.out_off[gi + 1] as usize);
        for (idx, nt) in (o_lo..o_hi).zip(outs) {
            let ni = self.out_net[idx] as usize;
            let old = self.nets[ni];
            self.nets[ni] = nt;
            if old.arrival.to_bits() == nt.arrival.to_bits()
                && old.slew.to_bits() == nt.slew.to_bits()
            {
                continue; // converged: the cone below is clean
            }
            for s in 0..self.sinks.n_sinks(ni) {
                let (sg, _) = self.sinks.get(ni, s);
                let sg = sg as usize;
                // Sequential sinks capture (endpoint below); their launch
                // does not depend on the data input.
                if !self.is_seq[sg] && !self.dirty_gate[sg] {
                    self.dirty_gate[sg] = true;
                    buckets[self.level[sg] as usize].push(sg as u32);
                }
            }
            for e in 0..self.ep_of_net[ni].len() {
                let e = self.ep_of_net[ni][e] as usize;
                self.mark_ep_dirty(e);
            }
        }
    }

    fn recompute_endpoint(&mut self, e: usize) {
        let net = self.endpoints[e].net.0 as usize;
        let arrival = self.nets[net].arrival;
        let required = if self.ep_gate[e] != NONE_U32 {
            let gi = self.ep_gate[e] as usize;
            let data_slew = self.nets[net].slew;
            let setup = self.setup_arc[gi]
                .and_then(|a| a.worst_delay(data_slew, self.config.clock_slew).ok())
                .unwrap_or(self.config.setup_time);
            self.config.effective_period() - setup
        } else {
            self.config.effective_period()
        };
        self.endpoints[e].arrival = arrival;
        self.endpoints[e].required = required;
    }

    /// Counting-sort stage schedule used by the full sweep (and by the
    /// statistical propagation in [`crate::ssta`]): stage 0 holds the
    /// sequential (launch) gates, stage `v + 1` combinational level `v`,
    /// gates ascending within each stage. Returns `(stage_off, schedule)`
    /// with stage `s` occupying `schedule[stage_off[s]..stage_off[s + 1]]`.
    pub(crate) fn stage_schedule(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.n_gates();
        let max_level = self.level.iter().copied().max().unwrap_or(0) as usize;
        let n_stages = max_level + 2;
        let stage_of = |gi: usize| {
            if self.is_seq[gi] {
                0
            } else {
                self.level[gi] as usize + 1
            }
        };
        let mut stage_off = vec![0u32; n_stages + 1];
        for gi in 0..n {
            stage_off[stage_of(gi) + 1] += 1;
        }
        for s in 0..n_stages {
            stage_off[s + 1] += stage_off[s];
        }
        let mut schedule = vec![0u32; n];
        let mut cursor: Vec<u32> = stage_off[..n_stages].to_vec();
        for gi in 0..n {
            let s = stage_of(gi);
            schedule[cursor[s] as usize] = gi as u32;
            cursor[s] += 1;
        }
        (stage_off, schedule)
    }

    /// Re-propagates pending changes: the sharded full sweep when
    /// [`Core::invalidate_all`] armed it, the dirty-cone path otherwise.
    fn update(&mut self) -> Result<(), StaError> {
        if self.all_dirty {
            self.update_full()
        } else {
            self.update_incremental()
        }
    }

    /// Full propagation through the counting-sort stage schedule, sharded
    /// across workers on wide stages. Bit-identical to draining an
    /// everything-dirty incremental update: loads are recomputed in
    /// ascending net order, gates evaluate against frozen lower-stage
    /// state in ascending order within each stage, and endpoints refresh
    /// ascending.
    fn update_full(&mut self) -> Result<(), StaError> {
        let tracing = varitune_trace::enabled();
        self.last_recomputed = 0;
        // The full sweep subsumes incremental dirt accumulated before the
        // invalidation; drop it so stale flags cannot leak into the next
        // incremental update.
        self.dirty_gates.clear();
        self.dirty_gate.fill(false);
        self.dirty_loads.clear();
        self.dirty_load.fill(false);
        self.dirty_eps.clear();
        self.dirty_ep.fill(false);

        // 1. Every net load, ascending (summation order per net is fixed
        //    by `compute_load`).
        for ni in 0..self.loads.len() {
            let load = self.compute_load(ni);
            self.loads[ni] = load;
            self.nets[ni].load = load;
        }

        // 2. Counting-sort stage schedule: stage 0 launches the
        //    sequential gates, stage `v + 1` is combinational level `v`.
        //    Gates are ascending within each stage.
        let (stage_off, schedule) = self.stage_schedule();
        let n_stages = stage_off.len() - 1;

        // 3. Propagate stage by stage; a stage only reads finalized
        //    lower-stage state, so each is an independent parallel unit.
        for s in 0..n_stages {
            let list = &schedule[stage_off[s] as usize..stage_off[s + 1] as usize];
            if list.is_empty() {
                continue;
            }
            if tracing && s > 0 {
                varitune_trace::observe("sta.level_width", list.len() as u64);
            }
            self.propagate_stage(list, tracing)?;
        }

        // 4. Every endpoint, ascending.
        for e in 0..self.endpoints.len() {
            self.recompute_endpoint(e);
        }

        if tracing {
            varitune_trace::add("sta.updates", 1);
            varitune_trace::add("sta.full_propagations", 1);
            varitune_trace::add("sta.gates_recomputed", self.last_recomputed as u64);
            varitune_trace::observe("sta.dirty_cone", self.last_recomputed as u64);
        }
        self.all_dirty = false;
        Ok(())
    }

    /// Evaluates one stage of the full sweep. Narrow stages run inline
    /// with a reusable scratch buffer; wide stages are cut into
    /// [`SHARD_GATES`]-gate structural shards dispatched via
    /// [`run_shards`], whose per-shard results the orchestrator merges
    /// into the global net state in shard order (the boundary-arrival
    /// exchange). Gates within a stage never read each other's outputs,
    /// so both paths produce identical bits; after an error the net state
    /// is unspecified (the caller discards the engine).
    fn propagate_stage(&mut self, list: &[u32], tracing: bool) -> Result<(), StaError> {
        if list.len() < MIN_PARALLEL_WIDTH {
            let mut scratch: Vec<NetTiming> = Vec::with_capacity(4);
            for &g in list {
                let gi = g as usize;
                scratch.clear();
                self.eval_gate_into(gi, &mut scratch)?;
                let (o_lo, o_hi) = (self.out_off[gi] as usize, self.out_off[gi + 1] as usize);
                for (idx, nt) in (o_lo..o_hi).zip(&scratch) {
                    self.nets[self.out_net[idx] as usize] = *nt;
                }
                self.last_recomputed += 1;
            }
            return Ok(());
        }

        let n_shards = list.len().div_ceil(SHARD_GATES);
        if tracing {
            // Shard metrics are structural — functions of the schedule
            // and the graph, never of the worker count.
            for s in 0..n_shards {
                let lo = s * SHARD_GATES;
                let hi = (lo + SHARD_GATES).min(list.len());
                varitune_trace::observe("sta.shard_occupancy", (hi - lo) as u64);
                let boundary: usize = list[lo..hi]
                    .iter()
                    .map(|&g| {
                        self.gate_outputs(g as usize)
                            .iter()
                            .filter(|&&ni| {
                                let ni = ni as usize;
                                self.sinks.n_sinks(ni) > 0
                                    || self.po_taps[ni] > 0
                                    || !self.ep_of_net[ni].is_empty()
                            })
                            .count()
                    })
                    .sum();
                varitune_trace::observe("sta.boundary_exchange", boundary as u64);
            }
        }

        // `threads == 1` stays serial without consulting the machine; the
        // dispatch itself still runs so traces cannot depend on the knob.
        let workers = if self.threads == 1 {
            1
        } else {
            resolve_threads(self.threads)
        };
        let results = {
            let this = &*self;
            run_shards(list.len(), SHARD_GATES, workers, |_, range| {
                let mut out: Vec<NetTiming> = Vec::with_capacity(range.len() + range.len() / 4);
                for &g in &list[range] {
                    this.eval_gate_into(g as usize, &mut out)?;
                }
                Ok::<_, StaError>(out)
            })
        };
        // Boundary-arrival exchange: merge each shard's private results
        // into the global net state, in shard order, so writes — and the
        // first error — match the serial sweep exactly.
        for (s, r) in results.into_iter().enumerate() {
            let vals = r?;
            let lo = s * SHARD_GATES;
            let hi = (lo + SHARD_GATES).min(list.len());
            let mut vi = 0usize;
            for &g in &list[lo..hi] {
                let gi = g as usize;
                for idx in self.out_off[gi] as usize..self.out_off[gi + 1] as usize {
                    self.nets[self.out_net[idx] as usize] = vals[vi];
                    vi += 1;
                }
                self.last_recomputed += 1;
            }
        }
        Ok(())
    }

    /// Re-propagates everything marked dirty; no-op when clean.
    fn update_incremental(&mut self) -> Result<(), StaError> {
        self.last_recomputed = 0;
        let tracing = varitune_trace::enabled();

        // 1. Net loads, in ascending net order (summation order is fixed
        //    per net by `compute_load`; processing order only decides
        //    which drivers get marked first).
        if !self.dirty_loads.is_empty() {
            let mut list = std::mem::take(&mut self.dirty_loads);
            list.sort_unstable();
            for &ni in &list {
                let ni = ni as usize;
                self.dirty_load[ni] = false;
                let new = self.compute_load(ni);
                if new.to_bits() != self.loads[ni].to_bits() {
                    self.loads[ni] = new;
                    self.nets[ni].load = new;
                    let d = self.driver[ni];
                    if d != NONE_U32 {
                        self.mark_gate_dirty(d as usize);
                    }
                }
            }
        }

        // 2. Bucket dirty gates by level (levels are frozen during an
        //    update: structural edits re-level before marking).
        let gate_list = std::mem::take(&mut self.dirty_gates);
        if !gate_list.is_empty() {
            let max_level = self.level.iter().copied().max().unwrap_or(0) as usize;
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
            let mut seq_list: Vec<u32> = Vec::new();
            for &g in &gate_list {
                if self.is_seq[g as usize] {
                    seq_list.push(g);
                } else {
                    buckets[self.level[g as usize] as usize].push(g);
                }
            }

            // 3. Launch points.
            seq_list.sort_unstable();
            for &g in &seq_list {
                let gi = g as usize;
                let outs = self.eval_seq(gi)?;
                self.apply_outputs(gi, outs, &mut buckets);
                self.dirty_gate[gi] = false;
                self.last_recomputed += 1;
            }

            // 4. Combinational cone, level by level. Dirtiness can only
            //    propagate to strictly higher levels, so a single
            //    ascending sweep converges.
            for lvl in 0..buckets.len() {
                let mut list = std::mem::take(&mut buckets[lvl]);
                if list.is_empty() {
                    continue;
                }
                list.sort_unstable();
                if tracing {
                    // Level-parallelism occupancy: how many dirty gates
                    // each ascending sweep offers `eval_comb_batch` at
                    // once. A function of the graph and the edit sequence
                    // only, never of the thread count.
                    varitune_trace::observe("sta.level_width", list.len() as u64);
                }
                let results = self.eval_comb_batch(&list);
                for (i, r) in results.into_iter().enumerate() {
                    let gi = list[i] as usize;
                    let outs = r?;
                    self.apply_outputs(gi, outs, &mut buckets);
                    self.dirty_gate[gi] = false;
                    self.last_recomputed += 1;
                }
            }
        }

        // 5. Endpoints.
        if !self.dirty_eps.is_empty() {
            let mut eps = std::mem::take(&mut self.dirty_eps);
            eps.sort_unstable();
            for &e in &eps {
                self.dirty_ep[e as usize] = false;
                self.recompute_endpoint(e as usize);
            }
        }
        if tracing {
            varitune_trace::add("sta.updates", 1);
            varitune_trace::add("sta.gates_recomputed", self.last_recomputed as u64);
            // Dirty-cone size distribution: how local each incremental
            // edit really was.
            varitune_trace::observe("sta.dirty_cone", self.last_recomputed as u64);
        }
        Ok(())
    }

    /// Appends the CSR row of a freshly added gate (levels are rebuilt by
    /// the caller via [`Core::compute_levels`]).
    fn push_gate_row(&mut self, ic: &InternedCell<'l>, seq: bool, ins: &[u32], outs: &[u32]) {
        self.cell_idx.push(ic.ci);
        self.is_seq.push(seq);
        self.in_net.extend_from_slice(ins);
        self.in_cap.extend_from_slice(&ic.caps);
        self.in_off.push(self.in_net.len() as u32);
        self.out_net.extend_from_slice(outs);
        self.out_off.push(self.out_net.len() as u32);
        self.arcs.extend_from_slice(&ic.arcs);
        self.arc_off.push(self.arcs.len() as u32);
        self.setup_arc.push(ic.setup);
        self.seq_ep.push(NONE_U32);
        self.dirty_gate.push(false);
    }
}

/// Splits the fanout of `net` behind an INV→INV pair — the engine-side
/// half of [`TimingGraph::split_fanout_id`], generic over the netlist
/// storage so the AoS and SoA forms take the identical code path.
fn split_fanout_impl<'l, V: NetlistEdit>(
    core: &mut Core<'l>,
    nl: &mut V,
    cells: &mut Vec<CellId>,
    net: NetId,
    inv_cell: CellId,
) -> Result<(usize, usize), StaError> {
    let ni = net.0 as usize;
    let all: Vec<(u32, u32)> = core.sinks.row(ni).to_vec();
    let moved: Vec<(u32, u32)> = all[all.len() / 2..].to_vec();

    let n_nets0 = nl.net_count();
    let base = nl.net_name(net).to_string();
    let mid = nl.add_net_named(format!("{base}_bufm"));
    let out = nl.add_net_named(format!("{base}_bufo"));
    for &(g, k) in &moved {
        nl.set_gate_input(g as usize, k as usize, out);
    }
    let g1 = nl.add_gate_at_end(GateKind::Inv, &[net], &[mid]);
    let g2 = nl.add_gate_at_end(GateKind::Inv, &[mid], &[out]);
    cells.push(inv_cell);
    cells.push(inv_cell);

    // Intern the new inverters (validates `inv_cell`; on failure the
    // netlist edit must be undone to keep the engine consistent).
    let interned = intern_cell(core.lib, g1, inv_cell, 1, 1, false)
        .and_then(|a| intern_cell(core.lib, g2, inv_cell, 1, 1, false).map(|b| (a, b)));
    let (ic1, ic2) = match interned {
        Ok(v) => v,
        Err(e) => {
            nl.truncate_to(g1, n_nets0);
            cells.truncate(g1);
            for &(g, k) in &moved {
                nl.set_gate_input(g as usize, k as usize, net);
            }
            return Err(e);
        }
    };

    let (mi, oi) = (mid.0 as usize, out.0 as usize);
    // Per-net rows for `mid` and `out` (in id order).
    core.sinks.add_row(&[(g2 as u32, 0)]);
    core.sinks.add_row(&moved);
    for _ in 0..2 {
        core.po_taps.push(0);
        core.driver.push(NONE_U32);
        core.ep_of_net.push(Vec::new());
        core.loads.push(0.0);
        core.load_override.push(None);
        core.nets.push(NetTiming::unpropagated());
        core.dirty_load.push(false);
    }
    core.driver[mi] = g1 as u32;
    core.driver[oi] = g2 as u32;
    core.sinks.truncate(ni, all.len() / 2);
    core.sinks.push(ni, (g1 as u32, 0));
    for &(g, k) in &moved {
        let i0 = core.in_off[g as usize] as usize;
        core.in_net[i0 + k as usize] = out.0;
    }

    // Per-gate CSR rows for the two inverters.
    core.push_gate_row(&ic1, false, &[net.0], &[mid.0]);
    core.push_gate_row(&ic2, false, &[mid.0], &[out.0]);

    // Endpoints attached to moved flip-flop data inputs follow their net.
    for &(g, _) in &moved {
        let e = core.seq_ep[g as usize];
        if e != NONE_U32 {
            let e = e as usize;
            core.endpoints[e].net = out;
            core.ep_of_net[ni].retain(|&x| x as usize != e);
            core.ep_of_net[oi].push(e as u32);
            core.mark_ep_dirty(e);
        }
    }

    // Structure changed: re-level before marking dirt.
    core.compute_levels()?;
    core.mark_load_dirty(ni);
    core.mark_load_dirty(mi);
    core.mark_load_dirty(oi);
    core.mark_gate_dirty(g1);
    core.mark_gate_dirty(g2);
    for &(g, _) in &moved {
        if !core.is_seq[g as usize] {
            core.mark_gate_dirty(g as usize);
        }
    }
    Ok((g1, g2))
}

/// The design a [`TimingGraph`] owns: either the pointer-rich AoS form or
/// the arena/SoA form. Both expose the same cell binding; the engine core
/// never looks inside after build.
enum DesignStore {
    Mapped(MappedDesign),
    Soa(SoaDesign),
}

/// Build-once incremental timing engine over an owned design.
///
/// Construct with [`TimingGraph::new`] (AoS [`MappedDesign`]) or
/// [`TimingGraph::new_soa`] (arena/SoA [`SoaDesign`]) — both run a full
/// propagation — then apply local edits and call [`TimingGraph::update`];
/// queries like [`TimingGraph::report`], [`TimingGraph::load`] and
/// [`TimingGraph::net_timing`] return the state **as of the last
/// `update`** — edits are not visible in timing values until then.
pub struct TimingGraph<'l> {
    store: DesignStore,
    core: Core<'l>,
}

impl<'l> TimingGraph<'l> {
    /// Builds the engine and runs the initial full propagation.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] under the same conditions as
    /// [`crate::graph::analyze`].
    pub fn new(
        design: MappedDesign,
        lib: &'l Library,
        config: &StaConfig,
    ) -> Result<Self, StaError> {
        design.netlist.validate()?;
        let mut core = Core::build(
            &design.netlist,
            &design.cells,
            design.wire_model,
            lib,
            config,
        )?;
        core.update()?;
        Ok(Self {
            store: DesignStore::Mapped(design),
            core,
        })
    }

    /// Builds the engine over an arena/SoA design and runs the initial
    /// full propagation. The result is bit-identical to
    /// [`TimingGraph::new`] on the AoS form of the same design.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] under the same conditions as
    /// [`TimingGraph::new`].
    pub fn new_soa(
        design: SoaDesign,
        lib: &'l Library,
        config: &StaConfig,
    ) -> Result<Self, StaError> {
        design.netlist.validate()?;
        let mut core = Core::build(
            &design.netlist,
            &design.cells,
            design.wire_model,
            lib,
            config,
        )?;
        core.update()?;
        Ok(Self {
            store: DesignStore::Soa(design),
            core,
        })
    }

    /// Worker threads for within-level propagation (`0` = all available
    /// cores, `1` = serial). Results are bit-identical for any value.
    pub fn set_threads(&mut self, threads: usize) {
        self.core.threads = threads;
    }

    /// The interned CSR core — shared with [`crate::ssta`] so statistical
    /// propagation reuses the identical structure and stage schedule.
    pub(crate) fn core(&self) -> &Core<'l> {
        &self.core
    }

    fn cells(&self) -> &[CellId] {
        match &self.store {
            DesignStore::Mapped(d) => &d.cells,
            DesignStore::Soa(d) => &d.cells,
        }
    }

    /// The design in its current (edited) state.
    ///
    /// # Panics
    ///
    /// Panics when the engine was built with [`TimingGraph::new_soa`];
    /// use [`TimingGraph::soa_design`] there.
    pub fn design(&self) -> &MappedDesign {
        match &self.store {
            DesignStore::Mapped(d) => d,
            DesignStore::Soa(_) => panic!("engine owns a SoaDesign; use soa_design()"),
        }
    }

    /// The arena/SoA design in its current (edited) state, when the
    /// engine was built with [`TimingGraph::new_soa`].
    pub fn soa_design(&self) -> Option<&SoaDesign> {
        match &self.store {
            DesignStore::Soa(d) => Some(d),
            DesignStore::Mapped(_) => None,
        }
    }

    /// Consumes the engine, returning the edited design.
    ///
    /// # Panics
    ///
    /// Panics when the engine was built with [`TimingGraph::new_soa`].
    pub fn into_design(self) -> MappedDesign {
        match self.store {
            DesignStore::Mapped(d) => d,
            DesignStore::Soa(_) => panic!("engine owns a SoaDesign; use soa_design()"),
        }
    }

    /// The library the engine was built against.
    pub fn lib(&self) -> &'l Library {
        self.core.lib
    }

    /// The analysis configuration.
    pub fn config(&self) -> &StaConfig {
        &self.core.config
    }

    /// Number of gates (grows as buffers are inserted).
    pub fn gate_count(&self) -> usize {
        self.core.n_gates()
    }

    /// Cell name of gate `gi`, resolved through the library (ids always
    /// resolve here: they were validated when the gate was interned).
    pub fn cell_name(&self, gi: usize) -> &str {
        &self.core.lib.cells[self.core.cell_idx[gi] as usize].name
    }

    /// Cell id of gate `gi`.
    pub fn cell_id(&self, gi: usize) -> CellId {
        self.cells()[gi]
    }

    /// Load on `net` as of the last [`TimingGraph::update`].
    pub fn load(&self, net: NetId) -> f64 {
        self.core.loads[net.0 as usize]
    }

    /// All net loads as of the last [`TimingGraph::update`].
    pub fn loads(&self) -> &[f64] {
        &self.core.loads
    }

    /// Timing of `net` as of the last [`TimingGraph::update`].
    pub fn net_timing(&self, net: NetId) -> &NetTiming {
        &self.core.nets[net.0 as usize]
    }

    /// Endpoints as of the last [`TimingGraph::update`].
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.core.endpoints
    }

    /// Worst slack as of the last [`TimingGraph::update`].
    pub fn worst_slack(&self) -> f64 {
        self.core
            .endpoints
            .iter()
            .map(Endpoint::slack)
            .fold(f64::INFINITY, f64::min)
    }

    /// Structural fanout of `net` (gate sinks + primary-output taps);
    /// reflects edits immediately.
    pub fn fanout(&self, net: NetId) -> usize {
        let ni = net.0 as usize;
        self.core.sinks.n_sinks(ni) + self.core.po_taps[ni] as usize
    }

    /// Driving gate of `net`; reflects edits immediately.
    pub fn driver(&self, net: NetId) -> Option<usize> {
        let d = self.core.driver[net.0 as usize];
        (d != NONE_U32).then_some(d as usize)
    }

    /// Gates re-evaluated by the last [`TimingGraph::update`] — the dirty
    /// cone size, exposed for tests and the bench harness.
    pub fn gates_recomputed_in_last_update(&self) -> usize {
        self.core.last_recomputed
    }

    /// Snapshot of the current timing state as a [`TimingReport`],
    /// bit-identical to a fresh [`crate::graph::analyze`] of
    /// [`TimingGraph::design`] when the engine is clean (no edits since
    /// the last [`TimingGraph::update`]).
    pub fn report(&self) -> TimingReport {
        TimingReport {
            config: self.core.config,
            nets: self.core.nets.clone(),
            endpoints: self.core.endpoints.clone(),
        }
    }

    /// Re-propagates the dirty cone (or runs the sharded full sweep after
    /// [`TimingGraph::invalidate_all`]); cheap no-op when nothing changed.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] if a LUT evaluation fails. The engine state is
    /// unspecified (but memory-safe) after an error; discard it.
    pub fn update(&mut self) -> Result<(), StaError> {
        self.core.update()
    }

    /// Marks the whole graph dirty so the next [`TimingGraph::update`] is
    /// a full propagation through the sharded stage schedule — used by
    /// benches to time full re-analysis.
    pub fn invalidate_all(&mut self) {
        self.core.invalidate_all();
    }

    /// Re-maps gate `gi` onto `cell_name`, dirtying its input-net loads
    /// (pin capacitances changed) and the downstream cone.
    ///
    /// # Errors
    ///
    /// [`StaError::UnknownCell`]/[`StaError::MissingArc`] if the cell does
    /// not fit; the engine is unchanged on error.
    pub fn resize_gate(&mut self, gi: usize, cell_name: &str) -> Result<(), StaError> {
        let id = self
            .core
            .lib
            .cell_id(cell_name)
            .ok_or_else(|| StaError::UnknownCell {
                gate: gi,
                name: cell_name.to_string(),
            })?;
        self.resize_gate_id(gi, id)
    }

    /// Id-based [`TimingGraph::resize_gate`] — the sizing-loop entry
    /// point: no name lookup, no string compare, and (because gate shape
    /// lives in the CSR) no netlist access at all.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::resize_gate`]; an out-of-range id reports
    /// [`StaError::UnknownCell`] with a `cell#<id>` label.
    pub fn resize_gate_id(&mut self, gi: usize, cell: CellId) -> Result<(), StaError> {
        if self.cells()[gi] == cell {
            return Ok(());
        }
        let n_in = self.core.gate_inputs(gi).len();
        let n_out = self.core.gate_outputs(gi).len();
        let seq = self.core.is_seq[gi];
        let ic = intern_cell(self.core.lib, gi, cell, n_in, n_out, seq)?;
        match &mut self.store {
            DesignStore::Mapped(d) => d.cells[gi] = cell,
            DesignStore::Soa(d) => d.cells[gi] = cell,
        }
        let core = &mut self.core;
        core.cell_idx[gi] = ic.ci;
        let a0 = core.arc_off[gi] as usize;
        core.arcs[a0..a0 + ic.arcs.len()].copy_from_slice(&ic.arcs);
        let i0 = core.in_off[gi] as usize;
        core.in_cap[i0..i0 + ic.caps.len()].copy_from_slice(&ic.caps);
        core.setup_arc[gi] = ic.setup;
        for k in 0..n_in {
            let inp = core.in_net[i0 + k] as usize;
            core.mark_load_dirty(inp);
        }
        core.mark_gate_dirty(gi);
        if core.seq_ep[gi] != NONE_U32 {
            // The setup constraint arc changed with the cell.
            let e = core.seq_ep[gi] as usize;
            core.mark_ep_dirty(e);
        }
        Ok(())
    }

    /// Overrides (or clears) the load seen on `net`, e.g. for boundary
    /// modeling in what-if analysis. Overridden nets ignore sink and wire
    /// capacitance until the override is cleared.
    pub fn set_load(&mut self, net: NetId, load: Option<f64>) {
        self.core.load_override[net.0 as usize] = load;
        self.core.mark_load_dirty(net.0 as usize);
    }

    /// Splits the fanout of `net` behind an INV→INV pair mapped to
    /// `inv_cell`, moving the second half of the gate sinks (by ascending
    /// gate index) onto the buffered copy — the synthesis buffering move.
    /// Returns the two new gate indices.
    ///
    /// # Errors
    ///
    /// [`StaError::UnknownCell`]/[`StaError::MissingArc`] if `inv_cell`
    /// cannot be interned; the engine is unchanged on error.
    pub fn split_fanout(&mut self, net: NetId, inv_cell: &str) -> Result<(usize, usize), StaError> {
        let gate = self.core.n_gates();
        let id = self
            .core
            .lib
            .cell_id(inv_cell)
            .ok_or_else(|| StaError::UnknownCell {
                gate,
                name: inv_cell.to_string(),
            })?;
        self.split_fanout_id(net, id)
    }

    /// Id-based [`TimingGraph::split_fanout`] — no name lookup in the
    /// buffering loop.
    ///
    /// # Errors
    ///
    /// As [`TimingGraph::split_fanout`].
    pub fn split_fanout_id(
        &mut self,
        net: NetId,
        inv_cell: CellId,
    ) -> Result<(usize, usize), StaError> {
        let Self { store, core } = self;
        match store {
            DesignStore::Mapped(d) => {
                split_fanout_impl(core, &mut d.netlist, &mut d.cells, net, inv_cell)
            }
            DesignStore::Soa(d) => {
                split_fanout_impl(core, &mut d.netlist, &mut d.cells, net, inv_cell)
            }
        }
    }

    /// Backward required-time propagation over the interned graph,
    /// bit-identical to [`crate::graph::required_times`] on the current
    /// state.
    ///
    /// # Errors
    ///
    /// Returns [`StaError`] if a LUT evaluation fails.
    pub fn required_times(&self) -> Result<Vec<f64>, StaError> {
        let core = &self.core;
        let mut req = vec![f64::INFINITY; core.nets.len()];
        for ep in &core.endpoints {
            let r = &mut req[ep.net.0 as usize];
            *r = r.min(ep.required);
        }
        // Any reverse topological order gives bit-identical results (the
        // per-net fold is a min); descending level is one.
        let mut order: Vec<u32> = (0..core.n_gates() as u32)
            .filter(|&g| !core.is_seq[g as usize])
            .collect();
        order.sort_unstable_by_key(|&g| (core.level[g as usize], g));
        for &g in order.iter().rev() {
            let gi = g as usize;
            let ins = core.gate_inputs(gi);
            let n_in = ins.len();
            let arcs = core.gate_arcs(gi);
            for (j, &out) in core.gate_outputs(gi).iter().enumerate() {
                let out_req = req[out as usize];
                if !out_req.is_finite() {
                    continue;
                }
                let load = core.nets[out as usize].load;
                for (k, &arc) in arcs[j * n_in..(j + 1) * n_in].iter().enumerate() {
                    let inp = ins[k] as usize;
                    let delay = arc.worst_delay(core.nets[inp].slew, load)?;
                    let r = &mut req[inp];
                    *r = r.min(out_req - delay);
                }
            }
        }
        Ok(req)
    }
}

/// Full analysis of a borrowed design through the same engine core —
/// the implementation behind [`crate::graph::analyze`].
pub(crate) fn analyze_via_engine(
    design: &MappedDesign,
    lib: &Library,
    config: &StaConfig,
) -> Result<TimingReport, StaError> {
    design.netlist.validate()?;
    let mut core = Core::build(
        &design.netlist,
        &design.cells,
        design.wire_model,
        lib,
        config,
    )?;
    core.update()?;
    Ok(TimingReport {
        config: core.config,
        nets: core.nets,
        endpoints: core.endpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::analyze;
    use crate::mapped::WireModel;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist, SoaNetlist};

    fn lib() -> Library {
        generate_nominal(&GenerateConfig::small_for_tests())
    }

    /// inv chain: a -> inv -> ... -> out, all `cell`.
    fn chain(n: usize, cell: &str, lib: &Library) -> MappedDesign {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for i in 0..n {
            let z = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        MappedDesign::from_names(nl, &vec![cell; n], lib, WireModel::default()).unwrap()
    }

    fn assert_reports_bit_identical(a: &TimingReport, b: &TimingReport) {
        assert_eq!(a.nets.len(), b.nets.len());
        for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
            assert_eq!(x.arrival.to_bits(), y.arrival.to_bits(), "net {i} arrival");
            assert_eq!(x.slew.to_bits(), y.slew.to_bits(), "net {i} slew");
            assert_eq!(x.load.to_bits(), y.load.to_bits(), "net {i} load");
            assert_eq!(x.driver, y.driver, "net {i} driver");
            assert_eq!(x.crit_input, y.crit_input, "net {i} crit_input");
            assert_eq!(
                x.cell_delay.to_bits(),
                y.cell_delay.to_bits(),
                "net {i} cell_delay"
            );
        }
        assert_eq!(a.endpoints.len(), b.endpoints.len());
        for (i, (x, y)) in a.endpoints.iter().zip(&b.endpoints).enumerate() {
            assert_eq!(x.net, y.net, "endpoint {i} net");
            assert_eq!(
                x.arrival.to_bits(),
                y.arrival.to_bits(),
                "endpoint {i} arrival"
            );
            assert_eq!(
                x.required.to_bits(),
                y.required.to_bits(),
                "endpoint {i} required"
            );
        }
    }

    #[test]
    fn fresh_engine_matches_analyze() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(2.0);
        let d = chain(8, "INV_2", &lib);
        let full = analyze(&d, &lib, &cfg).unwrap();
        let engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        assert_reports_bit_identical(&engine.report(), &full);
    }

    #[test]
    fn resize_retime_matches_fresh_analyze() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(2.0);
        let mut engine = TimingGraph::new(chain(10, "INV_2", &lib), &lib, &cfg).unwrap();
        engine.resize_gate(4, "INV_8").unwrap();
        engine.update().unwrap();
        let full = analyze(engine.design(), &lib, &cfg).unwrap();
        assert_reports_bit_identical(&engine.report(), &full);
    }

    #[test]
    fn resize_recomputes_only_the_dirty_cone() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        let mut engine = TimingGraph::new(chain(50, "INV_2", &lib), &lib, &cfg).unwrap();
        assert_eq!(engine.gates_recomputed_in_last_update(), 50);
        // Resizing gate 40 dirties its driver (input load changed) and
        // its downstream cone — a handful of gates, not the chain.
        engine.resize_gate(40, "INV_4").unwrap();
        engine.update().unwrap();
        let cone = engine.gates_recomputed_in_last_update();
        assert!(cone >= 2, "driver + resized gate at minimum: {cone}");
        assert!(cone <= 15, "cone should stay local: {cone}");
    }

    #[test]
    fn noop_update_recomputes_nothing() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        let mut engine = TimingGraph::new(chain(10, "INV_2", &lib), &lib, &cfg).unwrap();
        engine.update().unwrap();
        assert_eq!(engine.gates_recomputed_in_last_update(), 0);
        // Resizing to the current cell is a no-op, too.
        engine.resize_gate(3, "INV_2").unwrap();
        engine.update().unwrap();
        assert_eq!(engine.gates_recomputed_in_last_update(), 0);
    }

    #[test]
    fn split_fanout_matches_fresh_analyze() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        // One driver into 8 sinks, then split its net.
        let mut nl = Netlist::new("fan");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let mut names = vec!["INV_1".to_string()];
        for i in 0..8 {
            let z = nl.add_net(format!("z{i}"));
            nl.add_gate(GateKind::Inv, vec![x], vec![z]);
            nl.mark_output(z);
            names.push("INV_2".into());
        }
        let d = MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap();
        let mut engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        let (g1, g2) = engine.split_fanout(x, "INV_2").unwrap();
        assert_eq!((g1, g2), (9, 10));
        engine.update().unwrap();
        engine.design().netlist.validate().unwrap();
        let full = analyze(engine.design(), &lib, &cfg).unwrap();
        assert_reports_bit_identical(&engine.report(), &full);
    }

    #[test]
    fn split_fanout_moves_flip_flop_endpoints() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        // inv -> {ff, ff, ff, ff}: splitting the inv's net moves two FF
        // data inputs (and their endpoints) onto the buffered copy.
        let mut nl = Netlist::new("fffan");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let mut names = vec!["INV_1".to_string()];
        for i in 0..4 {
            let q = nl.add_net(format!("q{i}"));
            nl.add_gate(GateKind::Dff, vec![x], vec![q]);
            nl.mark_output(q);
            names.push("DF_1".into());
        }
        let d = MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap();
        let mut engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        engine.split_fanout(x, "INV_2").unwrap();
        engine.update().unwrap();
        engine.design().netlist.validate().unwrap();
        let full = analyze(engine.design(), &lib, &cfg).unwrap();
        assert_reports_bit_identical(&engine.report(), &full);
    }

    #[test]
    fn set_load_override_propagates_and_clears() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        let d = chain(5, "INV_2", &lib);
        let x = d.netlist.gates[1].outputs[0];
        let mut engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        let before = engine.report();
        engine.set_load(x, Some(0.05));
        engine.update().unwrap();
        assert_eq!(engine.load(x).to_bits(), 0.05f64.to_bits());
        assert!(engine.worst_slack() < before.worst_slack());
        // Clearing the override restores the exact baseline state.
        engine.set_load(x, None);
        engine.update().unwrap();
        assert_reports_bit_identical(&engine.report(), &before);
    }

    #[test]
    fn required_times_match_free_function() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(2.0);
        let d = chain(6, "INV_2", &lib);
        let report = analyze(&d, &lib, &cfg).unwrap();
        let free = crate::graph::required_times(&d, &lib, &report).unwrap();
        let engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        let eng = engine.required_times().unwrap();
        assert_eq!(free.len(), eng.len());
        for (i, (a, b)) in free.iter().zip(&eng).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "net {i}");
        }
    }

    #[test]
    fn unknown_cell_resize_leaves_engine_intact() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(2.0);
        let mut engine = TimingGraph::new(chain(4, "INV_2", &lib), &lib, &cfg).unwrap();
        let before = engine.report();
        assert!(matches!(
            engine.resize_gate(2, "NOPE_9"),
            Err(StaError::UnknownCell { gate: 2, .. })
        ));
        engine.update().unwrap();
        assert_reports_bit_identical(&engine.report(), &before);
    }

    /// One wide level: enough independent inverters to cross
    /// `MIN_PARALLEL_WIDTH` and span many `SHARD_GATES` shards.
    fn wide(n: usize, lib: &Library) -> MappedDesign {
        let mut nl = Netlist::new("wide");
        let a = nl.add_input("a");
        let mut names = Vec::new();
        for i in 0..n {
            let z = nl.add_net(format!("z{i}"));
            nl.add_gate(GateKind::Inv, vec![a], vec![z]);
            nl.mark_output(z);
            names.push(if i % 3 == 0 {
                "INV_1".to_string()
            } else {
                "INV_2".into()
            });
        }
        MappedDesign::from_names(nl, &names, lib, WireModel::default()).unwrap()
    }

    #[test]
    fn parallel_levels_are_bit_identical() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        // 8448 gates in one level: well past MIN_PARALLEL_WIDTH (2048),
        // 33 structural shards — the full sweep takes the run_shards
        // dispatch at every thread count.
        let d = wide(8448, &lib);
        let reference = TimingGraph::new(d.clone(), &lib, &cfg).unwrap().report();
        for threads in [2, 8] {
            let mut engine = TimingGraph::new(d.clone(), &lib, &cfg).unwrap();
            engine.set_threads(threads);
            engine.invalidate_all();
            engine.update().unwrap();
            assert_reports_bit_identical(&engine.report(), &reference);
        }
    }

    #[test]
    fn wide_incremental_updates_are_bit_identical() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        // Dirty every gate of the wide level through load overrides so the
        // *incremental* path (eval_comb_batch -> run_trials) crosses
        // MIN_PARALLEL_WIDTH; results must agree across thread counts.
        let d = wide(3000, &lib);
        let run = |threads: usize| {
            let mut engine = TimingGraph::new(d.clone(), &lib, &cfg).unwrap();
            engine.set_threads(threads);
            for gi in 0..engine.gate_count() {
                let out = NetId(engine.design().netlist.gates[gi].outputs[0].0);
                engine.set_load(out, Some(0.031));
            }
            engine.update().unwrap();
            assert_eq!(engine.gates_recomputed_in_last_update(), 3000);
            engine.report()
        };
        let one = run(1);
        assert_reports_bit_identical(&one, &run(2));
        assert_reports_bit_identical(&one, &run(8));
    }

    #[test]
    fn soa_engine_matches_mapped_engine_through_edits() {
        let lib = lib();
        let cfg = StaConfig::with_clock_period(5.0);
        // Mixed fanout + flip-flops, analyzed through both storage forms.
        let mut nl = Netlist::new("soa_eq");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let mut names = vec!["INV_1".to_string()];
        for i in 0..6 {
            let z = nl.add_net(format!("z{i}"));
            nl.add_gate(GateKind::Inv, vec![x], vec![z]);
            names.push("INV_2".into());
            let q = nl.add_net(format!("q{i}"));
            nl.add_gate(GateKind::Dff, vec![z], vec![q]);
            nl.mark_output(q);
            names.push("DF_1".into());
        }
        let d = MappedDesign::from_names(nl, &names, &lib, WireModel::default()).unwrap();
        let soa = SoaDesign::new(
            SoaNetlist::from_netlist(&d.netlist),
            d.cells.clone(),
            d.wire_model,
        );
        let mut aos_engine = TimingGraph::new(d, &lib, &cfg).unwrap();
        let mut soa_engine = TimingGraph::new_soa(soa, &lib, &cfg).unwrap();
        assert!(soa_engine.soa_design().is_some());
        assert_reports_bit_identical(&aos_engine.report(), &soa_engine.report());
        // The same edit sequence through both forms stays bit-identical:
        // resize, buffer the fanout net, update.
        for engine in [&mut aos_engine, &mut soa_engine] {
            engine.resize_gate(3, "INV_8").unwrap();
            engine.split_fanout(x, "INV_2").unwrap();
            engine.update().unwrap();
        }
        assert_reports_bit_identical(&aos_engine.report(), &soa_engine.report());
        // The SoA netlist stayed structurally valid through the edits.
        soa_engine.soa_design().unwrap().netlist.validate().unwrap();
    }
}
