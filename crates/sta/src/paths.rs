//! Worst-path extraction and statistical path/design timing (§V.B).
//!
//! The paper measures a design's local variation by extracting, for every
//! unique endpoint, the worst (latest-arriving) path, attaching a
//! `(mean, sigma)` delay to every cell on it from the statistical library,
//! and convolving those into path and design distributions (eqs. 5–11).

use varitune_libchar::StatLibrary;
use varitune_liberty::Library;
use varitune_netlist::NetId;
use varitune_variation::convolve;

use crate::graph::{StaError, TimingReport};
use crate::mapped::MappedDesign;

/// One cell on an extracted path, with the operating point it was timed at.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathCellSample {
    /// Gate index in the netlist.
    pub gate: usize,
    /// Library cell name.
    pub cell: String,
    /// Output pin name the path leaves through.
    pub out_pin: String,
    /// Input pin the critical arc comes from (`None` for a launching
    /// flip-flop, which times from its clock).
    pub related_pin: Option<String>,
    /// Input slew at the critical arc (ns).
    pub slew: f64,
    /// Output load (pF).
    pub load: f64,
    /// Propagated (deterministic) cell delay (ns).
    pub delay: f64,
}

/// A worst path to one endpoint with its statistical parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathTiming {
    /// Endpoint net the path captures at.
    pub endpoint: NetId,
    /// Cells launch-to-capture (launching flip-flop included when the path
    /// starts at a register).
    pub cells: Vec<PathCellSample>,
    /// Deterministic arrival at the endpoint (ns).
    pub arrival: f64,
    /// Path delay mean from the statistical library — eq. (5).
    pub mean: f64,
    /// Path delay sigma — eq. (9)/(10).
    pub sigma: f64,
}

impl PathTiming {
    /// Path depth = number of cells.
    pub fn depth(&self) -> usize {
        self.cells.len()
    }

    /// Mean plus `k` sigma — the paper plots mean + 3σ (Fig. 14).
    pub fn mean_plus_k_sigma(&self, k: f64) -> f64 {
        self.mean + k * self.sigma
    }
}

/// Design-level distribution — eq. (11) over per-endpoint worst paths.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DesignTiming {
    /// Sum of worst-path means (ns).
    pub mean: f64,
    /// RSS of worst-path sigmas (ns).
    pub sigma: f64,
    /// Number of paths aggregated.
    pub path_count: usize,
}

impl DesignTiming {
    /// Aggregates path distributions per eq. (11).
    pub fn from_paths(paths: &[PathTiming]) -> Self {
        Self {
            mean: convolve::design_mean(paths.iter().map(|p| p.mean)),
            sigma: convolve::design_sigma(paths.iter().map(|p| p.sigma)),
            path_count: paths.len(),
        }
    }
}

/// Extracts the worst path to `endpoint` by walking critical-input pointers
/// back to a launch point, then attaches statistical parameters from `stat`
/// with inter-cell correlation `rho` (the paper argues ρ = 0).
///
/// # Errors
///
/// Returns [`StaError`] if a cell or pin cannot be resolved or a table
/// cannot be evaluated.
///
/// # Panics
///
/// Panics if `rho` is outside `[-1, 1]`.
pub fn extract_path(
    design: &MappedDesign,
    lib: &Library,
    stat: &StatLibrary,
    report: &TimingReport,
    endpoint: NetId,
    rho: f64,
) -> Result<PathTiming, StaError> {
    let mut cells_rev: Vec<PathCellSample> = Vec::new();
    // Id-based query coordinates, parallel to `cells_rev`: the statistical
    // queries below run on (CellId, pin position) — the PathCellSample
    // strings are materialized only for the report.
    let mut arcs_rev: Vec<(varitune_liberty::CellId, usize, Option<usize>)> = Vec::new();
    let mut net = endpoint;
    loop {
        let t = report.nets[net.0 as usize];
        let Some(gi) = t.driver else {
            break; // reached a primary input
        };
        let cell = design
            .cell_of(gi, lib)
            .ok_or_else(|| StaError::UnknownCell {
                gate: gi,
                name: design.cell_label(gi, lib),
            })?;
        let out_pin = cell
            .output_pins()
            .nth(t.out_pin)
            .ok_or(StaError::MissingArc {
                gate: gi,
                cell: cell.name.clone(),
            })?;
        let related_pin = t
            .crit_input
            .and_then(|k| cell.input_pins().nth(k))
            .map(|p| p.name.clone());
        cells_rev.push(PathCellSample {
            gate: gi,
            cell: cell.name.clone(),
            out_pin: out_pin.name.clone(),
            related_pin,
            slew: t.crit_input_slew,
            load: t.load,
            delay: t.cell_delay,
        });
        arcs_rev.push((design.cells[gi], t.out_pin, t.crit_input));
        match t.crit_input {
            Some(k) => net = design.netlist.gates[gi].inputs[k],
            None => break, // launching flip-flop
        }
    }
    cells_rev.reverse();
    arcs_rev.reverse();

    let mut means = Vec::with_capacity(cells_rev.len());
    let mut sigmas = Vec::with_capacity(cells_rev.len());
    for (c, &(id, out_pin, crit_input)) in cells_rev.iter().zip(&arcs_rev) {
        // Query the precise critical arc when known; launching flip-flops
        // fall back to the pin-level worst (their only arc is clk->q).
        let (m, s) = match crit_input {
            Some(k) => stat.delay_stat_arc_id(id, out_pin, k, c.slew, c.load)?,
            None => stat.delay_stat_id(id, out_pin, c.slew, c.load)?,
        };
        means.push(m);
        sigmas.push(s);
    }
    let mean = convolve::path_mean(means.into_iter());
    let sigma = convolve::path_sigma(&sigmas, rho);

    Ok(PathTiming {
        endpoint,
        cells: cells_rev,
        arrival: report.nets[endpoint.0 as usize].arrival,
        mean,
        sigma,
    })
}

/// Extracts the worst path to **every unique endpoint** of `report` and
/// returns them together with the design-level aggregate.
///
/// # Errors
///
/// Propagates the first [`StaError`] from [`extract_path`].
pub fn worst_paths(
    design: &MappedDesign,
    lib: &Library,
    stat: &StatLibrary,
    report: &TimingReport,
    rho: f64,
) -> Result<(Vec<PathTiming>, DesignTiming), StaError> {
    let mut seen = std::collections::BTreeSet::new();
    let mut paths = Vec::new();
    for ep in &report.endpoints {
        if !seen.insert(ep.net) {
            continue; // one worst path per unique endpoint
        }
        paths.push(extract_path(design, lib, stat, report, ep.net, rho)?);
    }
    let design_timing = DesignTiming::from_paths(&paths);
    Ok((paths, design_timing))
}

/// Parametric timing yield: the probability that *every* worst path meets
/// `deadline`, treating path delays as independent normals
/// `N(mean, sigma)` — the statistical view behind the paper's motivation
/// that a lower design sigma permits a smaller clock uncertainty.
pub fn timing_yield(paths: &[PathTiming], deadline: f64) -> f64 {
    paths
        .iter()
        .map(|p| varitune_variation::stats::meet_probability(p.mean, p.sigma, deadline))
        .product()
}

/// The smallest deadline at which [`timing_yield`] reaches `target`
/// (bisection to `tol`). This converts a sigma reduction into the paper's
/// ultimate currency: a faster usable clock at equal yield.
///
/// # Errors
///
/// [`StaError::InvalidParameter`] if `target` is not in `(0, 1)`, `tol`
/// is not finite and positive, or `paths` is empty. These are
/// caller-supplied statistical quantities — data, not invariants — so
/// they must never panic.
pub fn deadline_at_yield(paths: &[PathTiming], target: f64, tol: f64) -> Result<f64, StaError> {
    if !(target > 0.0 && target < 1.0) {
        return Err(StaError::InvalidParameter {
            reason: format!("yield target must be in (0, 1), got {target}"),
        });
    }
    // `tol <= 0.0` is false for NaN, but the finiteness check rejects NaN
    // on its own.
    if tol <= 0.0 || !tol.is_finite() {
        return Err(StaError::InvalidParameter {
            reason: format!("bisection tolerance must be finite and > 0, got {tol}"),
        });
    }
    if paths.is_empty() {
        return Err(StaError::InvalidParameter {
            reason: "need at least one path to bisect a deadline".to_string(),
        });
    }
    let mut lo = 0.0f64;
    let mut hi = paths
        .iter()
        .map(|p| p.mean + 10.0 * p.sigma)
        .fold(0.0, f64::max)
        .max(tol);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if timing_yield(paths, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Path-depth histogram: `depths[d]` = number of worst paths with depth `d`
/// (the Fig. 12 data).
pub fn depth_histogram(paths: &[PathTiming]) -> Vec<usize> {
    let max = paths.iter().map(PathTiming::depth).max().unwrap_or(0);
    let mut h = vec![0usize; max + 1];
    for p in paths {
        h[p.depth()] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{analyze, StaConfig};
    use crate::mapped::WireModel;
    use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn fixtures() -> (Library, StatLibrary) {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let mc = generate_mc_libraries(&nominal, &cfg, 25, 7);
        let stat = StatLibrary::from_libraries(&mc).unwrap();
        (nominal, stat)
    }

    fn chain_design(n: usize, cell: &str) -> MappedDesign {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("a");
        for i in 0..n {
            let z = nl.add_net(format!("n{i}"));
            nl.add_gate(GateKind::Inv, vec![prev], vec![z]);
            prev = z;
        }
        nl.mark_output(prev);
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        MappedDesign::from_names(nl, &vec![cell; n], &lib, WireModel::default()).unwrap()
    }

    #[test]
    fn path_depth_matches_chain_length() {
        let (lib, stat) = fixtures();
        let d = chain_design(6, "INV_2");
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        let ep = r.endpoints[0].net;
        let p = extract_path(&d, &lib, &stat, &r, ep, 0.0).unwrap();
        assert_eq!(p.depth(), 6);
        assert_eq!(p.cells[0].cell, "INV_2");
    }

    #[test]
    fn path_mean_close_to_deterministic_arrival() {
        let (lib, stat) = fixtures();
        let d = chain_design(6, "INV_2");
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        let p = extract_path(&d, &lib, &stat, &r, r.endpoints[0].net, 0.0).unwrap();
        // The stat mean uses worst-over-arcs tables, so it sits at or just
        // above the deterministic arrival.
        assert!(
            p.mean >= p.arrival * 0.9 && p.mean <= p.arrival * 1.3,
            "mean {} vs arrival {}",
            p.mean,
            p.arrival
        );
    }

    #[test]
    fn sigma_grows_sublinearly_with_depth() {
        let (lib, stat) = fixtures();
        let cfg = StaConfig::with_clock_period(20.0);
        let short = {
            let d = chain_design(4, "INV_2");
            let r = analyze(&d, &lib, &cfg).unwrap();
            extract_path(&d, &lib, &stat, &r, r.endpoints[0].net, 0.0).unwrap()
        };
        let long = {
            let d = chain_design(16, "INV_2");
            let r = analyze(&d, &lib, &cfg).unwrap();
            extract_path(&d, &lib, &stat, &r, r.endpoints[0].net, 0.0).unwrap()
        };
        assert!(long.sigma > short.sigma);
        // eq. (10): sigma scales like sqrt(depth) for identical cells.
        let ratio = long.sigma / short.sigma;
        assert!((ratio - 2.0).abs() < 0.35, "ratio {ratio}");
        // Mean scales linearly, so sigma grows sublinearly vs mean.
        assert!(long.mean / short.mean > ratio);
    }

    #[test]
    fn rho_increases_path_sigma() {
        let (lib, stat) = fixtures();
        let d = chain_design(8, "INV_2");
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(10.0)).unwrap();
        let p0 = extract_path(&d, &lib, &stat, &r, r.endpoints[0].net, 0.0).unwrap();
        let p5 = extract_path(&d, &lib, &stat, &r, r.endpoints[0].net, 0.5).unwrap();
        assert!(p5.sigma > p0.sigma);
        assert_eq!(p5.mean, p0.mean);
    }

    #[test]
    fn high_drive_chain_has_lower_sigma() {
        // The core Pelgrom effect the tuning method exploits.
        let (lib, stat) = fixtures();
        let cfg = StaConfig::with_clock_period(20.0);
        let weak = {
            let d = chain_design(8, "INV_1");
            let r = analyze(&d, &lib, &cfg).unwrap();
            extract_path(&d, &lib, &stat, &r, r.endpoints[0].net, 0.0).unwrap()
        };
        let strong = {
            let d = chain_design(8, "INV_8");
            let r = analyze(&d, &lib, &cfg).unwrap();
            extract_path(&d, &lib, &stat, &r, r.endpoints[0].net, 0.0).unwrap()
        };
        assert!(
            strong.sigma < weak.sigma,
            "{} vs {}",
            strong.sigma,
            weak.sigma
        );
    }

    #[test]
    fn worst_paths_dedup_unique_endpoints() {
        let (lib, stat) = fixtures();
        let mut nl = Netlist::new("two-ep");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        // The same net is marked PO twice — still one unique endpoint.
        nl.mark_output(x);
        nl.mark_output(x);
        let d = MappedDesign::from_names(nl, &["INV_1"], &lib, WireModel::default()).unwrap();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        let (paths, design_t) = worst_paths(&d, &lib, &stat, &r, 0.0).unwrap();
        assert_eq!(paths.len(), 1);
        assert_eq!(design_t.path_count, 1);
    }

    #[test]
    fn design_timing_aggregates_eq11() {
        let paths = vec![
            PathTiming {
                endpoint: NetId(0),
                cells: vec![],
                arrival: 1.0,
                mean: 1.0,
                sigma: 0.3,
            },
            PathTiming {
                endpoint: NetId(1),
                cells: vec![],
                arrival: 2.0,
                mean: 2.0,
                sigma: 0.4,
            },
        ];
        let d = DesignTiming::from_paths(&paths);
        assert!((d.mean - 3.0).abs() < 1e-12);
        assert!((d.sigma - 0.5).abs() < 1e-12);
        assert_eq!(d.path_count, 2);
    }

    #[test]
    fn depth_histogram_counts() {
        let mk = |n: usize| PathTiming {
            endpoint: NetId(n as u32),
            cells: (0..n)
                .map(|g| PathCellSample {
                    gate: g,
                    cell: "INV_1".into(),
                    out_pin: "Z".into(),
                    related_pin: Some("A".into()),
                    slew: 0.0,
                    load: 0.0,
                    delay: 0.0,
                })
                .collect(),
            arrival: 0.0,
            mean: 0.0,
            sigma: 0.0,
        };
        let h = depth_histogram(&[mk(1), mk(3), mk(3), mk(5)]);
        assert_eq!(h[1], 1);
        assert_eq!(h[3], 2);
        assert_eq!(h[5], 1);
        assert_eq!(h.len(), 6);
    }

    fn synthetic_path(mean: f64, sigma: f64) -> PathTiming {
        PathTiming {
            endpoint: NetId(0),
            cells: vec![],
            arrival: mean,
            mean,
            sigma,
        }
    }

    #[test]
    fn yield_limits_and_monotonicity() {
        let paths = vec![synthetic_path(1.0, 0.1), synthetic_path(1.5, 0.05)];
        assert!(timing_yield(&paths, 0.1) < 1e-6);
        assert!(timing_yield(&paths, 10.0) > 0.999_999);
        let y1 = timing_yield(&paths, 1.6);
        let y2 = timing_yield(&paths, 1.8);
        assert!(y2 > y1);
    }

    #[test]
    fn yield_of_single_path_matches_normal_cdf() {
        let p = vec![synthetic_path(2.0, 0.2)];
        // Deadline at mean + 3 sigma: ~99.87 %.
        let y = timing_yield(&p, 2.6);
        assert!((y - 0.99865).abs() < 1e-3, "{y}");
    }

    #[test]
    fn deadline_at_yield_inverts_timing_yield() {
        let paths = vec![
            synthetic_path(1.0, 0.08),
            synthetic_path(1.4, 0.05),
            synthetic_path(0.9, 0.12),
        ];
        let d = deadline_at_yield(&paths, 0.99, 1e-5).unwrap();
        let y = timing_yield(&paths, d);
        assert!((y - 0.99).abs() < 1e-3, "yield at recovered deadline: {y}");
        // Lower sigma paths reach the same yield earlier.
        let calm: Vec<PathTiming> = paths
            .iter()
            .map(|p| synthetic_path(p.mean, p.sigma * 0.5))
            .collect();
        assert!(deadline_at_yield(&calm, 0.99, 1e-5).unwrap() < d);
    }

    #[test]
    fn deadline_at_yield_rejects_bad_inputs_without_panicking() {
        let one = [synthetic_path(1.0, 0.1)];
        for bad in [0.0, 1.0, 1.5, -0.2, f64::NAN] {
            let err = deadline_at_yield(&one, bad, 1e-3).unwrap_err();
            assert!(matches!(err, StaError::InvalidParameter { .. }), "{err}");
        }
        let err = deadline_at_yield(&one, 0.9, 0.0).unwrap_err();
        assert!(matches!(err, StaError::InvalidParameter { .. }));
        let err = deadline_at_yield(&[], 0.9, 1e-3).unwrap_err();
        assert!(matches!(err, StaError::InvalidParameter { .. }));
    }

    #[test]
    fn path_from_ff_includes_launching_ff() {
        let (lib, stat) = fixtures();
        let mut nl = Netlist::new("ffpath");
        let d0 = nl.add_input("d0");
        let q0 = nl.add_net("q0");
        nl.add_gate(GateKind::Dff, vec![d0], vec![q0]);
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![q0], vec![x]);
        let q1 = nl.add_net("q1");
        nl.add_gate(GateKind::Dff, vec![x], vec![q1]);
        let d =
            MappedDesign::from_names(nl, &["DF_1", "INV_2", "DF_1"], &lib, WireModel::default())
                .unwrap();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(5.0)).unwrap();
        let ep = r.endpoints.iter().find(|e| e.net == NetId(2)).unwrap();
        let p = extract_path(&d, &lib, &stat, &r, ep.net, 0.0).unwrap();
        // Launching DF_1 + INV_2 = depth 2.
        assert_eq!(p.depth(), 2);
        assert_eq!(p.cells[0].cell, "DF_1");
        assert_eq!(p.cells[1].cell, "INV_2");
    }
}
