//! Human-readable timing reports, in the style of a sign-off STA tool's
//! `report_timing`: the K most critical endpoints, each with its worst path
//! spelled out cell by cell (arc, operating point, incremental and
//! cumulative delay, statistical mean/sigma).

use std::fmt::Write as _;

use varitune_libchar::StatLibrary;
use varitune_liberty::Library;

use crate::graph::{EndpointKind, StaError, TimingReport};
use crate::mapped::MappedDesign;
use crate::paths::extract_path;

/// Renders the `k` most critical paths of `report` as text.
///
/// # Errors
///
/// Propagates [`StaError`] from path extraction.
pub fn report_timing(
    design: &MappedDesign,
    lib: &Library,
    stat: &StatLibrary,
    report: &TimingReport,
    k: usize,
) -> Result<String, StaError> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Timing report — clock {:.3} ns (effective {:.3} ns), {} endpoints",
        report.config.clock_period,
        report.config.effective_period(),
        report.endpoints.len()
    );
    let mut seen = std::collections::BTreeSet::new();
    let mut printed = 0usize;
    for ep in report.critical_endpoints() {
        if printed >= k {
            break;
        }
        if !seen.insert(ep.net) {
            continue;
        }
        printed += 1;
        let path = extract_path(design, lib, stat, report, ep.net, 0.0)?;
        let kind = match ep.kind {
            EndpointKind::FlipFlopData { gate } => {
                format!("setup at {}", design.cell_label(gate, lib))
            }
            EndpointKind::PrimaryOutput => "primary output".to_string(),
        };
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "Path {printed}: endpoint {} ({kind})",
            design.netlist.net_name(ep.net)
        );
        let _ = writeln!(
            out,
            "  arrival {:.4} ns, required {:.4} ns, slack {:+.4} ns ({})",
            ep.arrival,
            ep.required,
            ep.slack(),
            if ep.slack() >= 0.0 { "MET" } else { "VIOLATED" }
        );
        let _ = writeln!(
            out,
            "  statistical: mean {:.4} ns, sigma {:.4} ns, mean+3s {:.4} ns",
            path.mean,
            path.sigma,
            path.mean_plus_k_sigma(3.0)
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>4} {:>9} {:>9} {:>9} {:>9}",
            "cell", "arc", "slew", "load", "incr", "cum"
        );
        let mut cum = 0.0;
        for c in &path.cells {
            cum += c.delay;
            let _ = writeln!(
                out,
                "  {:<12} {:>4} {:>9.4} {:>9.4} {:>9.4} {:>9.4}",
                c.cell,
                format!("{}>{}", c.related_pin.as_deref().unwrap_or("CK"), c.out_pin),
                c.slew,
                c.load,
                c.delay,
                cum,
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{analyze, StaConfig};
    use crate::mapped::WireModel;
    use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig, StatLibrary};
    use varitune_netlist::{GateKind, Netlist};

    fn fixture() -> (MappedDesign, Library, StatLibrary) {
        let cfg = GenerateConfig::small_for_tests();
        let lib = generate_nominal(&cfg);
        let stat = StatLibrary::from_libraries(&generate_mc_libraries(&lib, &cfg, 10, 5)).unwrap();
        let mut nl = Netlist::new("rpt");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        nl.add_gate(GateKind::Inv, vec![x], vec![y]);
        nl.add_gate(GateKind::Dff, vec![y], vec![q]);
        nl.mark_output(q);
        let d =
            MappedDesign::from_names(nl, &["INV_1", "INV_2", "DF_1"], &lib, WireModel::default())
                .unwrap();
        (d, lib, stat)
    }

    #[test]
    fn report_lists_paths_cells_and_slack() {
        let (d, lib, stat) = fixture();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(4.0)).unwrap();
        let text = report_timing(&d, &lib, &stat, &r, 5).unwrap();
        for needle in [
            "Timing report",
            "Path 1:",
            "setup at DF_1",
            "INV_1",
            "INV_2",
            "A>Z",
            "MET",
            "statistical: mean",
        ] {
            assert!(text.contains(needle), "missing `{needle}`:\n{text}");
        }
    }

    #[test]
    fn k_limits_the_path_count() {
        let (d, lib, stat) = fixture();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(4.0)).unwrap();
        let text = report_timing(&d, &lib, &stat, &r, 1).unwrap();
        assert!(text.contains("Path 1:"));
        assert!(!text.contains("Path 2:"));
    }

    #[test]
    fn violated_paths_say_so() {
        let (d, lib, stat) = fixture();
        let r = analyze(&d, &lib, &StaConfig::with_clock_period(0.01)).unwrap();
        let text = report_timing(&d, &lib, &stat, &r, 2).unwrap();
        assert!(text.contains("VIOLATED"), "{text}");
    }
}
