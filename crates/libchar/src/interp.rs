//! Bilinear interpolation in the paper's notation (§V.A, eqs. 2–4).
//!
//! [`varitune_liberty::Lut::interpolate`] is the production entry point;
//! this module exposes the textbook two-step formulation — interpolate along
//! the load axis to get `P1`, `P2` (eqs. 2–3), then along the slew axis to
//! get `X` (eq. 4) — both as a free function over four corner samples and as
//! a reference implementation validated against the production one.

use varitune_liberty::{InterpolateError, Lut};

/// One step of linear interpolation between `(x0, q0)` and `(x1, q1)` at
/// `x`, matching the ratio form of eqs. (2)–(4).
///
/// # Panics
///
/// Panics if `x0 == x1` (degenerate bracket).
pub fn lerp_between(x0: f64, x1: f64, q0: f64, q1: f64, x: f64) -> f64 {
    assert!(x0 != x1, "degenerate interpolation bracket");
    let w1 = (x1 - x) / (x1 - x0);
    let w0 = (x - x0) / (x1 - x0);
    w1 * q0 + w0 * q1
}

/// Eqs. (2)–(4): bilinear interpolation over the four bracketing samples
/// `q11 = Q(Lᵢ, Sⱼ)`, `q12 = Q(Lᵢ, Sⱼ₊₁)`, `q21 = Q(Lᵢ₊₁, Sⱼ)`,
/// `q22 = Q(Lᵢ₊₁, Sⱼ₊₁)` at load `l ∈ [lᵢ, lᵢ₊₁]` and slew `s ∈ [sⱼ, sⱼ₊₁]`.
///
/// # Panics
///
/// Panics on a degenerate bracket (`li == li1` or `sj == sj1`).
#[allow(clippy::too_many_arguments)]
pub fn bilinear(
    li: f64,
    li1: f64,
    sj: f64,
    sj1: f64,
    q11: f64,
    q12: f64,
    q21: f64,
    q22: f64,
    l: f64,
    s: f64,
) -> f64 {
    // Eq. (2): P1 along the load axis at slew sj.
    let p1 = lerp_between(li, li1, q11, q21, l);
    // Eq. (3): P2 along the load axis at slew sj1.
    let p2 = lerp_between(li, li1, q12, q22, l);
    // Eq. (4): X along the slew axis.
    lerp_between(sj, sj1, p1, p2, s)
}

/// Reference LUT interpolation built directly on [`bilinear`]; exists to
/// cross-validate [`Lut::interpolate`] (property-tested in the crate's
/// integration tests). Queries must lie inside the table.
///
/// # Errors
///
/// Returns [`InterpolateError::EmptyTable`] if the table is smaller than
/// 2×2 or the query lies outside the grid (this reference version does not
/// clamp).
pub fn interpolate_reference(lut: &Lut, slew: f64, load: f64) -> Result<f64, InterpolateError> {
    let si = lut.index_slew.iter().position(|&s| s >= slew);
    let li = lut.index_load.iter().position(|&l| l >= load);
    let (Some(si), Some(li)) = (si, li) else {
        return Err(InterpolateError::EmptyTable);
    };
    if lut.rows() < 2 || lut.cols() < 2 || slew < lut.index_slew[0] || load < lut.index_load[0] {
        return Err(InterpolateError::EmptyTable);
    }
    let j = si.max(1);
    let i = li.max(1);
    Ok(bilinear(
        lut.index_load[i - 1],
        lut.index_load[i],
        lut.index_slew[j - 1],
        lut.index_slew[j],
        lut.at(j - 1, i - 1),
        lut.at(j, i - 1),
        lut.at(j - 1, i),
        lut.at(j, i),
        load,
        slew,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(lerp_between(0.0, 1.0, 10.0, 20.0, 0.0), 10.0);
        assert_eq!(lerp_between(0.0, 1.0, 10.0, 20.0, 1.0), 20.0);
        assert_eq!(lerp_between(0.0, 1.0, 10.0, 20.0, 0.5), 15.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn lerp_rejects_equal_brackets() {
        let _ = lerp_between(1.0, 1.0, 0.0, 1.0, 1.0);
    }

    #[test]
    fn bilinear_recovers_corners() {
        let f = |l: f64, s: f64| bilinear(0.0, 1.0, 0.0, 1.0, 1.0, 2.0, 3.0, 4.0, l, s);
        assert_eq!(f(0.0, 0.0), 1.0); // q11
        assert_eq!(f(0.0, 1.0), 2.0); // q12
        assert_eq!(f(1.0, 0.0), 3.0); // q21
        assert_eq!(f(1.0, 1.0), 4.0); // q22
    }

    #[test]
    fn bilinear_is_exact_for_bilinear_functions() {
        // f(l, s) = 2 + 3l + 5s + 7ls is reproduced exactly.
        let f = |l: f64, s: f64| 2.0 + 3.0 * l + 5.0 * s + 7.0 * l * s;
        let got = bilinear(
            1.0,
            3.0,
            2.0,
            5.0,
            f(1.0, 2.0),
            f(1.0, 5.0),
            f(3.0, 2.0),
            f(3.0, 5.0),
            2.2,
            3.3,
        );
        assert!((got - f(2.2, 3.3)).abs() < 1e-12);
    }

    #[test]
    fn reference_matches_production_inside_grid() {
        let lut = Lut::new(
            vec![0.0, 1.0, 2.0],
            vec![0.0, 10.0, 20.0],
            vec![
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![7.0, 8.0, 9.0],
            ],
        );
        for &(s, l) in &[(0.5, 5.0), (1.5, 15.0), (0.1, 19.0), (1.9, 0.5)] {
            let a = lut.interpolate(s, l).unwrap();
            let b = interpolate_reference(&lut, s, l).unwrap();
            assert!((a - b).abs() < 1e-12, "at ({s},{l}): {a} vs {b}");
        }
    }

    #[test]
    fn reference_rejects_out_of_grid() {
        let lut = Lut::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![vec![0.0, 1.0], vec![2.0, 3.0]],
        );
        assert!(interpolate_reference(&lut, 5.0, 0.5).is_err());
        assert!(interpolate_reference(&lut, -0.5, 0.5).is_err());
    }
}
