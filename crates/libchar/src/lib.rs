//! Synthetic standard-cell library generation, Monte-Carlo characterization
//! and the statistical (mean/sigma) library of §IV of the paper.
//!
//! The original work characterized a proprietary 40 nm library of 304 cells
//! with SPICE Monte Carlo. We do not have that library, so this crate builds
//! a synthetic stand-in with the same *statistical shape*:
//!
//! * [`arch`] — the cell inventory (304 cells across the Appendix A
//!   families: 19 inverters, 36 AND/OR, 46 NAND, 43 NOR, 29 XNOR/XOR,
//!   34 adders, 27 muxes, 51 flip-flops, 12 latches, 7 others) with
//!   logical-effort parameters per family,
//! * [`electrical`] — an analytic RC / logical-effort delay and transition
//!   model used to fill the 7×7 LUTs,
//! * [`generate`] — the nominal library builder and the Monte-Carlo
//!   engine producing N perturbed libraries (Pelgrom local mismatch),
//! * [`statlib`] — the §IV statistical library: entry-wise mean and sigma
//!   across the N libraries, stored as two structurally identical Liberty
//!   libraries,
//! * [`interp`] — the bilinear interpolation of §V.A (eqs. 2–4) in the
//!   paper's notation.
//!
//! # Example
//!
//! ```
//! use varitune_libchar::generate::{generate_mc_libraries, generate_nominal, GenerateConfig};
//! use varitune_libchar::statlib::StatLibrary;
//!
//! let cfg = GenerateConfig::small_for_tests();
//! let nominal = generate_nominal(&cfg);
//! let mc = generate_mc_libraries(&nominal, &cfg, 8, 42);
//! let stat = StatLibrary::from_libraries(&mc).unwrap();
//! // Larger drive strengths have lower sigma (Pelgrom).
//! let s1 = stat.worst_delay_sigma("INV_1").unwrap();
//! let s8 = stat.worst_delay_sigma("INV_8").unwrap();
//! assert!(s8 < s1);
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod arch;
pub mod electrical;
pub mod generate;
pub mod interp;
pub mod statlib;

pub use generate::{
    generate_mc_libraries, generate_mc_libraries_threaded, generate_nominal, GenerateConfig,
};
pub use statlib::{BuildStatError, SigmaColumns, StatLibError, StatLibrary, StatTable, TableKind};
