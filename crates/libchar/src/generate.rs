//! Nominal library generation and Monte-Carlo characterization.
//!
//! [`generate_nominal`] characterizes every inventory cell over the §II
//! slew/load grid with the analytic model of [`crate::electrical`],
//! producing a normal Liberty [`Library`]. [`generate_mc_libraries`] then
//! produces `n` perturbed libraries: each draws one Pelgrom mismatch
//! deviate per cell (plus a small independent per-entry term) and scales
//! every LUT entry accordingly — the in-crate equivalent of re-running
//! SPICE characterization with perturbed transistor models, which is how
//! the paper builds its 50 statistical input libraries.

use varitune_liberty::{
    Cell, InternalPower, Library, Lut, Pin, PinDirection, TimingArc, TimingSense, TimingType,
};
use varitune_variation::parallel::run_trials;
use varitune_variation::rng::rng_from;
use varitune_variation::sampler::Xoshiro256PlusPlus;
use varitune_variation::PelgromModel;

use crate::arch::{Archetype, SequentialKind};
use crate::electrical::Technology;

/// Configuration of the library generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateConfig {
    /// Library name (the paper's typical corner is `TT1P1V25C`).
    pub name: String,
    /// Technology constants.
    pub technology: Technology,
    /// Local-mismatch model for the MC characterization.
    pub pelgrom: PelgromModel,
    /// Cell inventory to characterize.
    pub inventory: Vec<Archetype>,
    /// Global delay factor baked into the library (1.0 for the typical
    /// corner; use [`varitune_variation::ProcessCorner::delay_factor`] to
    /// generate corner libraries).
    pub corner_factor: f64,
}

impl GenerateConfig {
    /// Full 304-cell library at the typical corner.
    pub fn full() -> Self {
        Self {
            name: "TT1P1V25C".to_string(),
            technology: Technology::new(),
            pelgrom: PelgromModel::new(),
            inventory: crate::arch::standard_inventory(),
            corner_factor: 1.0,
        }
    }

    /// Small inventory (a few families, few drives) for fast unit tests.
    pub fn small_for_tests() -> Self {
        let keep = ["INV", "ND2", "NR2", "MU2", "DF"];
        let inventory: Vec<Archetype> = crate::arch::standard_inventory()
            .into_iter()
            .filter(|a| keep.contains(&a.prefix.as_str()))
            .map(|mut a| {
                a.drives.retain(|d| [1.0, 2.0, 4.0, 8.0].contains(d));
                a
            })
            .collect();
        Self {
            name: "TT1P1V25C".to_string(),
            technology: Technology::new(),
            pelgrom: PelgromModel::new(),
            inventory,
            corner_factor: 1.0,
        }
    }
}

impl Default for GenerateConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Generates the nominal (unperturbed) library for `cfg`.
pub fn generate_nominal(cfg: &GenerateConfig) -> Library {
    let mut lib = Library::new(cfg.name.clone());
    for arch in &cfg.inventory {
        for &drive in &arch.drives {
            lib.cells.push(build_cell(cfg, arch, drive));
        }
    }
    lib
}

fn timing_sense_for(arch: &Archetype) -> TimingSense {
    match arch.prefix.as_str() {
        p if p.starts_with("INV") || p.starts_with("ND") || p.starts_with("NR") => {
            TimingSense::NegativeUnate
        }
        p if p.starts_with("XN")
            || p.starts_with("EO")
            || p.starts_with("MU")
            || p.starts_with("AD") =>
        {
            TimingSense::NonUnate
        }
        _ => TimingSense::PositiveUnate,
    }
}

fn build_cell(cfg: &GenerateConfig, arch: &Archetype, drive: f64) -> Cell {
    let tech = &cfg.technology;
    let mut cell = Cell::new(arch.cell_name(drive), arch.area(drive));
    cell.leakage_power = tech.leakage_power(arch, drive);

    for input in &arch.inputs {
        let mut pin = Pin::input(input.clone(), tech.input_cap(arch, drive));
        // Flip-flop data pins carry setup/hold constraint arcs against the
        // clock. The constraint tables are indexed (data slew, clock slew):
        // the Lut's load axis holds the clock slew for these arcs.
        if arch.sequential == SequentialKind::FlipFlop && input == "D" {
            // Every sequential archetype in `arch` declares its clock pin.
            #[allow(clippy::expect_used)]
            let clock = arch.clock.as_deref().expect("ff has clock");
            let data_axis = tech.slew_axis();
            let clock_axis = vec![0.01, 0.03, 0.08, 0.2];
            let mut setup = TimingArc::new(clock.to_string());
            setup.timing_type = TimingType::SetupRising;
            setup.cell_rise = Some(fill_lut(&data_axis, &clock_axis, &|ds, cs| {
                tech.setup_time(drive, ds, cs)
            }));
            setup.cell_fall = Some(fill_lut(&data_axis, &clock_axis, &|ds, cs| {
                1.05 * tech.setup_time(drive, ds, cs)
            }));
            let mut hold = TimingArc::new(clock.to_string());
            hold.timing_type = TimingType::HoldRising;
            hold.cell_rise = Some(fill_lut(&data_axis, &clock_axis, &|ds, cs| {
                tech.hold_time(drive, ds, cs)
            }));
            hold.cell_fall = Some(fill_lut(&data_axis, &clock_axis, &|ds, cs| {
                0.95 * tech.hold_time(drive, ds, cs)
            }));
            pin.timing.push(setup);
            pin.timing.push(hold);
        }
        cell.pins.push(pin);
    }
    if let Some(ck) = &arch.clock {
        // Clock pins present a lighter load than data pins.
        let mut pin = Pin::input(ck.clone(), 0.6 * tech.input_cap(arch, drive));
        pin.is_clock = true;
        cell.pins.push(pin);
    }

    let slew_axis = tech.slew_axis();
    let load_axis = tech.load_axis(drive);
    let sense = timing_sense_for(arch);

    for output in &arch.outputs {
        let mut pin = Pin::output(output.pin.clone(), output.function.clone());
        pin.max_capacitance = Some(tech.max_load(drive));
        // The technology's slew axis is a fixed non-empty constant.
        #[allow(clippy::expect_used)]
        let max_slew = *slew_axis.last().expect("non-empty slew axis");
        pin.max_transition = Some(max_slew);

        // Sequential cells time from the clock pin; combinational cells get
        // one arc per data input.
        let related: Vec<(&str, TimingType)> = match arch.sequential {
            SequentialKind::None => arch
                .inputs
                .iter()
                .map(|i| (i.as_str(), TimingType::Combinational))
                .collect(),
            // Every sequential archetype in `arch` declares its clock pin.
            #[allow(clippy::expect_used)]
            SequentialKind::FlipFlop => {
                vec![(
                    arch.clock.as_deref().expect("ff has clock"),
                    TimingType::RisingEdge,
                )]
            }
            #[allow(clippy::expect_used)]
            SequentialKind::Latch => {
                vec![(
                    arch.clock.as_deref().expect("latch has clock"),
                    TimingType::RisingEdge,
                )]
            }
        };

        for (arc_idx, (rel, ttype)) in related.iter().enumerate() {
            // Later inputs of a stack are slightly slower; this keeps the
            // per-arc tables distinct as in a real characterization.
            let arc_skew = 1.0 + 0.04 * arc_idx as f64;
            let delay_at = |slew: f64, load: f64| {
                cfg.corner_factor * arc_skew * tech.delay(arch, output, drive, slew, load)
            };
            let trans_at = |slew: f64, load: f64| {
                cfg.corner_factor * arc_skew * tech.transition(arch, output, drive, slew, load)
            };
            let mut arc = TimingArc::new(rel.to_string());
            arc.timing_sense = sense;
            arc.timing_type = *ttype;
            arc.cell_rise = Some(fill_lut(&slew_axis, &load_axis, &delay_at));
            arc.cell_fall = Some(fill_lut(&slew_axis, &load_axis, &|s, l| {
                0.95 * delay_at(s, l)
            }));
            arc.rise_transition = Some(fill_lut(&slew_axis, &load_axis, &trans_at));
            arc.fall_transition = Some(fill_lut(&slew_axis, &load_axis, &|s, l| {
                0.97 * trans_at(s, l)
            }));
            pin.timing.push(arc);

            // Internal power mirrors the timing arcs (one group per
            // related input, rise/fall energies per event).
            let energy_at = |slew: f64, load: f64| {
                cfg.corner_factor.sqrt()
                    * arc_skew
                    * tech.switching_energy(arch, output, drive, slew, load)
            };
            let mut power = InternalPower::new(rel.to_string());
            power.rise_power = Some(fill_lut(&slew_axis, &load_axis, &energy_at));
            power.fall_power = Some(fill_lut(&slew_axis, &load_axis, &|s, l| {
                0.92 * energy_at(s, l)
            }));
            pin.internal_power.push(power);
        }
        cell.pins.push(pin);
    }
    cell
}

fn fill_lut(slew_axis: &[f64], load_axis: &[f64], f: &dyn Fn(f64, f64) -> f64) -> Lut {
    let values = slew_axis
        .iter()
        .map(|&s| load_axis.iter().map(|&l| f(s, l)).collect())
        .collect();
    Lut::new(slew_axis.to_vec(), load_axis.to_vec(), values)
}

/// Generates `n` Monte-Carlo perturbed copies of `nominal`.
///
/// Each library perturbs every cell with one shared mismatch deviate (the
/// cell's transistors are perturbed together) plus a small independent
/// per-entry term, with total relative sigma given by the Pelgrom model at
/// each LUT entry's electrical stress. Deterministic in `seed`, and —
/// because library `k` draws only from its own derived stream
/// (`derive_seed(seed, "mc-lib", k)`) — **bit-identical for any thread
/// count**. This entry point uses every available core; see
/// [`generate_mc_libraries_threaded`] for an explicit knob.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn generate_mc_libraries(
    nominal: &Library,
    cfg: &GenerateConfig,
    n: usize,
    seed: u64,
) -> Vec<Library> {
    generate_mc_libraries_threaded(nominal, cfg, n, seed, 0)
}

/// [`generate_mc_libraries`] with an explicit worker-thread count
/// (`0` = all available cores, `1` = fully sequential). Characterization MC
/// is the slowest stage of the flow; it parallelizes embarrassingly because
/// each perturbed library is one independent trial.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn generate_mc_libraries_threaded(
    nominal: &Library,
    cfg: &GenerateConfig,
    n: usize,
    seed: u64,
    threads: usize,
) -> Vec<Library> {
    assert!(n > 0, "need at least one MC library");
    run_trials(n, threads, |k| {
        perturb_library(nominal, cfg, rng_from(seed, "mc-lib", k as u64))
    })
}

/// Correlated share of the per-entry perturbation: most of the mismatch is
/// common to the whole cell, a small residue is per-entry characterization
/// noise. The two shares are chosen so total variance stays `rel_sigma²`.
const CELL_SHARE: f64 = 0.95;

fn perturb_library(
    nominal: &Library,
    cfg: &GenerateConfig,
    mut rng: Xoshiro256PlusPlus,
) -> Library {
    let entry_share = (1.0 - CELL_SHARE * CELL_SHARE).sqrt();
    let mut lib = nominal.clone();
    lib.name = format!("{}_mc", nominal.name);
    // Per-cell cache of the relative-sigma surface: every output-pin table
    // of one cell shares the characterization axes, so the Pelgrom model
    // (with its `powf`) is evaluated once per cell rather than once per
    // table entry. The axis guard keeps the cache exact should a cell ever
    // carry mixed table shapes. The RNG draw order is part of this crate's
    // determinism contract: one `z_cell` per cell, then per table one
    // Box–Muller *pair* per two entries in row-major order (an odd last
    // entry discards the pair's second deviate). `perturb_into_column`
    // replays exactly this sequence.
    let mut rel_slews: Vec<f64> = Vec::new();
    let mut rel_loads: Vec<f64> = Vec::new();
    let mut rel: Vec<f64> = Vec::new();
    for cell in &mut lib.cells {
        let drive = cell.drive_strength().unwrap_or(1.0);
        let z_cell: f64 = rng.standard_normal();
        let common = CELL_SHARE * z_cell;
        rel_slews.clear();
        rel_loads.clear(); // `rel` depends on drive: invalidate across cells
        for pin in cell.output_pins_mut() {
            // Timing and power tables perturb alike (the §III remark that
            // the method extends to transition power relies on power
            // mismatch being tabulated the same way).
            let timing_tables = pin.timing.iter_mut().flat_map(TimingArc::all_tables_mut);
            let power_tables = pin
                .internal_power
                .iter_mut()
                .flat_map(InternalPower::tables_mut);
            for lut in timing_tables.chain(power_tables) {
                let Lut {
                    index_slew,
                    index_load,
                    values,
                } = lut;
                if rel_slews != *index_slew || rel_loads != *index_load {
                    rel_slews.clone_from(index_slew);
                    rel_loads.clone_from(index_load);
                    rel.clear();
                    rel.reserve(index_slew.len() * index_load.len());
                    for &s in index_slew.iter() {
                        for &l in index_load.iter() {
                            let stress = cfg.technology.stress(drive, s, l);
                            rel.push(cfg.pelgrom.relative_sigma(drive, stress));
                        }
                    }
                }
                let mut r = 0;
                let mut stash: Option<f64> = None;
                for row in values.iter_mut() {
                    for v in row.iter_mut() {
                        let z_entry = match stash.take() {
                            Some(z) => z,
                            None => {
                                let (a, b) = rng.standard_normal_pair();
                                stash = Some(b);
                                a
                            }
                        };
                        let factor = 1.0 + rel[r] * (common + entry_share * z_entry);
                        *v *= factor.max(0.05);
                        r += 1;
                    }
                }
            }
        }
    }
    lib
}

/// Streams the LUT values of one perturbed library directly into a flat
/// column, in the canonical structure order of the statistical merge
/// (cells → pins → timing arcs × table kinds → power groups × rise/fall),
/// without materializing a `Library`.
///
/// The RNG draw sequence and every floating-point operation match
/// [`perturb_library`] exactly — input-pin tables (flip-flop setup/hold
/// constraints) are not perturbed there, so here they contribute their
/// nominal values and consume no draws — making the column bit-identical
/// to gathering a materialized perturbed library.
pub(crate) fn perturb_into_column(
    nominal: &Library,
    cfg: &GenerateConfig,
    mut rng: Xoshiro256PlusPlus,
    column: &mut Vec<f64>,
) {
    let entry_share = (1.0 - CELL_SHARE * CELL_SHARE).sqrt();
    column.clear();
    let mut rel_slews: Vec<f64> = Vec::new();
    let mut rel_loads: Vec<f64> = Vec::new();
    let mut rel: Vec<f64> = Vec::new();
    for cell in &nominal.cells {
        let drive = cell.drive_strength().unwrap_or(1.0);
        let z_cell: f64 = rng.standard_normal();
        let common = CELL_SHARE * z_cell;
        rel_slews.clear();
        rel_loads.clear();
        for pin in &cell.pins {
            if pin.direction != PinDirection::Output {
                for lut in pin
                    .timing
                    .iter()
                    .flat_map(TimingArc::all_tables)
                    .chain(pin.internal_power.iter().flat_map(InternalPower::tables))
                {
                    for row in &lut.values {
                        column.extend_from_slice(row);
                    }
                }
                continue;
            }
            let timing_tables = pin.timing.iter().flat_map(TimingArc::all_tables);
            let power_tables = pin.internal_power.iter().flat_map(InternalPower::tables);
            for lut in timing_tables.chain(power_tables) {
                if rel_slews != lut.index_slew || rel_loads != lut.index_load {
                    rel_slews.clone_from(&lut.index_slew);
                    rel_loads.clone_from(&lut.index_load);
                    rel.clear();
                    rel.reserve(lut.index_slew.len() * lut.index_load.len());
                    for &s in lut.index_slew.iter() {
                        for &l in lut.index_load.iter() {
                            let stress = cfg.technology.stress(drive, s, l);
                            rel.push(cfg.pelgrom.relative_sigma(drive, stress));
                        }
                    }
                }
                let mut r = 0;
                let mut stash: Option<f64> = None;
                for row in &lut.values {
                    for &v in row {
                        let z_entry = match stash.take() {
                            Some(z) => z,
                            None => {
                                let (a, b) = rng.standard_normal_pair();
                                stash = Some(b);
                                a
                            }
                        };
                        let factor = 1.0 + rel[r] * (common + entry_share * z_entry);
                        column.push(v * factor.max(0.05));
                        r += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_liberty::CellKind;
    use varitune_variation::stats::Accumulator;

    #[test]
    fn full_library_has_304_cells() {
        let lib = generate_nominal(&GenerateConfig::full());
        assert_eq!(lib.cells.len(), 304);
    }

    #[test]
    fn census_matches_appendix_a_via_cellkind() {
        let lib = generate_nominal(&GenerateConfig::full());
        let count = |k: CellKind| lib.cells.iter().filter(|c| c.kind() == k).count();
        assert_eq!(count(CellKind::Inverter), 19);
        assert_eq!(count(CellKind::Or), 36);
        assert_eq!(count(CellKind::Nand), 46);
        assert_eq!(count(CellKind::Nor), 43);
        assert_eq!(count(CellKind::Xnor), 29);
        assert_eq!(count(CellKind::Adder), 34);
        assert_eq!(count(CellKind::Mux), 27);
        assert_eq!(count(CellKind::FlipFlop), 51);
        assert_eq!(count(CellKind::Latch), 12);
        assert_eq!(count(CellKind::Other), 7);
    }

    #[test]
    fn every_output_pin_has_delay_and_transition_tables() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        for cell in &lib.cells {
            for pin in cell.output_pins() {
                assert!(!pin.timing.is_empty(), "{} {}", cell.name, pin.name);
                for arc in &pin.timing {
                    assert!(arc.cell_rise.is_some());
                    assert!(arc.cell_fall.is_some());
                    assert!(arc.rise_transition.is_some());
                    assert!(arc.fall_transition.is_some());
                }
            }
        }
    }

    #[test]
    fn flip_flops_time_from_clock() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let ff = lib.cell("DF_1").unwrap();
        let q = ff.pin("Q").unwrap();
        assert_eq!(q.timing.len(), 1);
        assert_eq!(q.timing[0].related_pin, "CK");
        assert_eq!(q.timing[0].timing_type, TimingType::RisingEdge);
        assert!(ff.pin("CK").unwrap().is_clock);
    }

    #[test]
    fn combinational_cells_have_one_arc_per_input() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let nd2 = lib.cell("ND2_2").unwrap();
        let z = nd2.pin("Z").unwrap();
        assert_eq!(z.timing.len(), 2);
        let related: Vec<_> = z.timing.iter().map(|a| a.related_pin.as_str()).collect();
        assert_eq!(related, vec!["A", "B"]);
    }

    #[test]
    fn luts_grow_along_load_and_slew() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let lut = lib.cell("INV_1").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap();
        for i in 0..lut.rows() {
            for j in 1..lut.cols() {
                assert!(lut.at(i, j) > lut.at(i, j - 1));
            }
        }
        for j in 0..lut.cols() {
            for i in 1..lut.rows() {
                assert!(lut.at(i, j) > lut.at(i - 1, j));
            }
        }
    }

    #[test]
    fn generated_library_round_trips_through_liberty_text() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let text = varitune_liberty::write_library(&lib).unwrap();
        let parsed = varitune_liberty::parse_library(&text).unwrap();
        assert_eq!(parsed, lib);
    }

    #[test]
    fn corner_factor_scales_all_delays() {
        let typ = generate_nominal(&GenerateConfig::small_for_tests());
        let slow_cfg = GenerateConfig {
            corner_factor: 1.25,
            ..GenerateConfig::small_for_tests()
        };
        let slow = generate_nominal(&slow_cfg);
        let t = typ.cell("INV_1").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap()
            .at(0, 0);
        let s = slow.cell("INV_1").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap()
            .at(0, 0);
        assert!((s / t - 1.25).abs() < 1e-9);
    }

    #[test]
    fn power_tables_and_leakage_are_generated() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        for cell in &lib.cells {
            assert!(cell.leakage_power > 0.0, "{}", cell.name);
            for pin in cell.output_pins() {
                assert_eq!(
                    pin.internal_power.len(),
                    pin.timing.len(),
                    "{}: one power group per arc",
                    cell.name
                );
                for g in &pin.internal_power {
                    let rp = g.rise_power.as_ref().expect("rise power present");
                    assert!(rp.min_value().expect("non-empty") > 0.0);
                }
            }
        }
        // Bigger drives burn more: both leakage and per-event energy.
        let e = |name: &str| {
            lib.cell(name).unwrap().pin("Z").unwrap().internal_power[0]
                .rise_power
                .as_ref()
                .unwrap()
                .at(3, 3)
        };
        assert!(e("INV_8") > e("INV_1"));
        assert!(
            lib.cell("INV_8").unwrap().leakage_power > lib.cell("INV_1").unwrap().leakage_power
        );
    }

    #[test]
    fn power_round_trips_through_liberty() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let parsed =
            varitune_liberty::parse_library(&varitune_liberty::write_library(&lib).unwrap())
                .unwrap();
        assert_eq!(parsed, lib);
    }

    #[test]
    fn mc_libraries_are_deterministic_and_distinct() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let a = generate_mc_libraries(&nominal, &cfg, 3, 7);
        let b = generate_mc_libraries(&nominal, &cfg, 3, 7);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
        assert_ne!(a[0], nominal.clone());
    }

    #[test]
    fn mc_libraries_bit_identical_across_thread_counts() {
        // The tentpole guarantee applied to characterization MC: each
        // library draws only from its own derived stream, so chunking
        // across threads cannot change a single bit.
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let one = generate_mc_libraries_threaded(&nominal, &cfg, 6, 13, 1);
        let two = generate_mc_libraries_threaded(&nominal, &cfg, 6, 13, 2);
        let eight = generate_mc_libraries_threaded(&nominal, &cfg, 6, 13, 8);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn mc_preserves_structure() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let mc = generate_mc_libraries(&nominal, &cfg, 2, 1);
        assert_eq!(mc[0].cells.len(), nominal.cells.len());
        assert_eq!(mc[0].table_count(), nominal.table_count());
    }

    #[test]
    fn mc_entry_sigma_tracks_pelgrom_prediction() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let libs = generate_mc_libraries(&nominal, &cfg, 400, 99);
        // Observe one heavy-corner entry of INV_1 across the sample.
        let nominal_v = nominal.cell("INV_1").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap()
            .at(6, 6);
        let mut acc = Accumulator::new();
        for lib in &libs {
            acc.push(
                lib.cell("INV_1").unwrap().pin("Z").unwrap().timing[0]
                    .cell_rise
                    .as_ref()
                    .unwrap()
                    .at(6, 6),
            );
        }
        let tech = &cfg.technology;
        let stress = tech.stress(1.0, tech.slew_axis()[6], tech.load_axis(1.0)[6]);
        let expect = nominal_v * cfg.pelgrom.relative_sigma(1.0, stress);
        let got = acc.std_dev();
        assert!(
            (got - expect).abs() / expect < 0.20,
            "sigma {got} vs predicted {expect}"
        );
    }
}
