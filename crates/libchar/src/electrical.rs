//! Analytic electrical model used to characterize the synthetic library.
//!
//! The model is a classic logical-effort / RC formulation:
//!
//! * effort delay `= τ · g · C_load / C_in(drive)` — a cell twice the drive
//!   has half the output resistance,
//! * parasitic delay `= τ_p · p · complexity` — self-loading of the family,
//! * slew degradation `= k_s · slew_in` — a slow input edge slows the cell.
//!
//! Output transition follows the same RC shape with its own coefficients.
//! The constants are tuned to a 40 nm-flavoured technology: a unit inverter
//! driving four copies of itself (FO4) comes out around 30 ps, and the LUT
//! ranges below match the characterization grid described in §II (steep to
//! shallow slews; load ranges that grow with drive strength).

use crate::arch::{ArchOutput, Archetype};

/// Technology constants of the synthetic process.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Technology {
    /// Effort time constant: ns of delay per unit of electrical fan-out for
    /// a unit-effort gate.
    pub tau: f64,
    /// Parasitic time constant (ns per unit of parasitic delay).
    pub tau_p: f64,
    /// Input capacitance of a unit-drive, unit-effort input pin (pF).
    pub unit_input_cap: f64,
    /// Fraction of the input slew added to the propagation delay.
    pub slew_to_delay: f64,
    /// Output transition per unit of RC (dimensionless multiplier on the
    /// effort delay).
    pub transition_factor: f64,
    /// Floor on any produced transition (ns); nothing switches infinitely
    /// fast.
    pub min_transition: f64,
}

impl Default for Technology {
    fn default() -> Self {
        Self {
            tau: 0.0042,
            tau_p: 0.0055,
            unit_input_cap: 0.0011,
            slew_to_delay: 0.18,
            transition_factor: 2.1,
            min_transition: 0.004,
        }
    }
}

impl Technology {
    /// Creates the default 40 nm-flavoured technology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Input capacitance of one input pin of `arch` at `drive` (pF).
    pub fn input_cap(&self, arch: &Archetype, drive: f64) -> f64 {
        self.unit_input_cap * arch.logical_effort * drive
    }

    /// Maximum load the output of `arch` at `drive` is characterized for
    /// (pF). Low-drive cells are not designed to drive big loads (§II), so
    /// the load range scales with drive strength.
    pub fn max_load(&self, drive: f64) -> f64 {
        0.022 * drive
    }

    /// Nominal propagation delay (ns) of `output` of `arch` at `drive`,
    /// for input transition `slew` (ns) into capacitive load `load` (pF).
    pub fn delay(
        &self,
        arch: &Archetype,
        output: &ArchOutput,
        drive: f64,
        slew: f64,
        load: f64,
    ) -> f64 {
        let c_in = self.unit_input_cap * drive;
        let effort = self.tau * arch.logical_effort * (load / c_in);
        let parasitic = self.tau_p * arch.parasitic * output.complexity;
        parasitic + effort + self.slew_to_delay * slew
    }

    /// Nominal output transition (ns) under the same conditions.
    pub fn transition(
        &self,
        arch: &Archetype,
        output: &ArchOutput,
        drive: f64,
        slew: f64,
        load: f64,
    ) -> f64 {
        let c_in = self.unit_input_cap * drive;
        let rc = self.tau * arch.logical_effort * (load / c_in);
        let base = self.transition_factor * rc
            + 0.35 * self.tau_p * arch.parasitic * output.complexity
            + 0.05 * slew;
        base.max(self.min_transition)
    }

    /// Setup requirement of a flip-flop's data pin (ns) as a function of
    /// the data slew and the clock slew. A slow data edge needs more setup;
    /// the drive dependence is weak (the input stage barely scales).
    pub fn setup_time(&self, drive: f64, data_slew: f64, clock_slew: f64) -> f64 {
        (0.030 + 0.35 * data_slew + 0.10 * clock_slew) * (1.0 + 0.1 / drive)
    }

    /// Hold requirement of a flip-flop's data pin (ns); a fast data edge
    /// against a slow clock edge is the risky case.
    pub fn hold_time(&self, drive: f64, data_slew: f64, clock_slew: f64) -> f64 {
        ((0.012 + 0.08 * clock_slew - 0.06 * data_slew) * (1.0 + 0.05 / drive)).max(0.002)
    }

    /// Internal switching energy per output event (pJ) — internal node
    /// charging plus the short-circuit current drawn while input and output
    /// overlap during a slow edge. The load's own ½CV² is accounted
    /// separately by the power analysis (it belongs to the net, not the
    /// cell).
    pub fn switching_energy(
        &self,
        arch: &Archetype,
        output: &ArchOutput,
        drive: f64,
        slew: f64,
        load: f64,
    ) -> f64 {
        let v2 = 1.1 * 1.1; // nominal supply squared
        let c_in = self.unit_input_cap * drive;
        let internal = 0.30 * c_in * arch.parasitic * output.complexity;
        let short_circuit = 0.50 * self.unit_input_cap * slew * drive.sqrt();
        let crowbar_on_load = 0.12 * load;
        v2 * (internal + short_circuit + crowbar_on_load)
    }

    /// Static leakage of the variant (nW): scales with transistor width
    /// (drive) and stack complexity.
    pub fn leakage_power(&self, arch: &Archetype, drive: f64) -> f64 {
        0.6 * drive * (1.0 + 0.15 * arch.parasitic)
    }

    /// The *electrical stress* of an operating point, normalized so that the
    /// lightest characterized corner is ~0 and the heaviest ~3. Feeds the
    /// Pelgrom model: sigma climbs toward slow edges into heavy loads.
    pub fn stress(&self, drive: f64, slew: f64, load: f64) -> f64 {
        let load_norm = load / self.max_load(drive);
        let slew_norm = slew / 0.6;
        2.2 * load_norm + 0.8 * slew_norm
    }

    /// The slew axis of the characterization grid (ns), steep to shallow.
    pub fn slew_axis(&self) -> Vec<f64> {
        vec![0.008, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6]
    }

    /// The load axis of the characterization grid for a cell at `drive`
    /// (pF); spans up to [`Technology::max_load`].
    pub fn load_axis(&self, drive: f64) -> Vec<f64> {
        let m = self.max_load(drive);
        [0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0]
            .iter()
            .map(|f| f * m)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::standard_inventory;

    fn inv() -> Archetype {
        standard_inventory()
            .into_iter()
            .find(|a| a.prefix == "INV")
            .unwrap()
    }

    #[test]
    fn fo4_delay_is_plausible_for_40nm() {
        let t = Technology::new();
        let a = inv();
        let fo4_load = 4.0 * t.input_cap(&a, 1.0);
        let d = t.delay(&a, &a.outputs[0], 1.0, 0.02, fo4_load);
        assert!(d > 0.01 && d < 0.08, "FO4 = {d} ns");
    }

    #[test]
    fn delay_increases_with_load_and_slew() {
        let t = Technology::new();
        let a = inv();
        let o = &a.outputs[0];
        let d_light = t.delay(&a, o, 2.0, 0.02, 0.001);
        let d_heavy = t.delay(&a, o, 2.0, 0.02, 0.02);
        let d_slow = t.delay(&a, o, 2.0, 0.4, 0.001);
        assert!(d_heavy > d_light);
        assert!(d_slow > d_light);
    }

    #[test]
    fn higher_drive_is_faster_at_same_load() {
        let t = Technology::new();
        let a = inv();
        let o = &a.outputs[0];
        let d1 = t.delay(&a, o, 1.0, 0.05, 0.01);
        let d4 = t.delay(&a, o, 4.0, 0.05, 0.01);
        assert!(d4 < d1);
    }

    #[test]
    fn transition_has_floor() {
        let t = Technology::new();
        let a = inv();
        let tr = t.transition(&a, &a.outputs[0], 32.0, 0.008, 1e-6);
        assert!(tr >= t.min_transition);
    }

    #[test]
    fn transition_grows_with_load() {
        let t = Technology::new();
        let a = inv();
        let o = &a.outputs[0];
        assert!(t.transition(&a, o, 1.0, 0.05, 0.02) > t.transition(&a, o, 1.0, 0.05, 0.002));
    }

    #[test]
    fn load_axis_scales_with_drive() {
        let t = Technology::new();
        let l1 = t.load_axis(1.0);
        let l8 = t.load_axis(8.0);
        assert_eq!(l1.len(), 7);
        assert!((l8[6] / l1[6] - 8.0).abs() < 1e-12);
        assert!(l1.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn slew_axis_is_shared_and_increasing() {
        let t = Technology::new();
        let s = t.slew_axis();
        assert_eq!(s.len(), 7);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stress_rises_toward_heavy_corners() {
        let t = Technology::new();
        let easy = t.stress(1.0, 0.008, t.load_axis(1.0)[0]);
        let hard = t.stress(1.0, 0.6, t.load_axis(1.0)[6]);
        assert!(hard > easy + 1.0, "easy {easy} hard {hard}");
    }

    #[test]
    fn stress_is_drive_normalized() {
        // The same *relative* position in the LUT gives the same stress for
        // any drive; absolute load does not.
        let t = Technology::new();
        let s1 = t.stress(1.0, 0.1, t.load_axis(1.0)[3]);
        let s8 = t.stress(8.0, 0.1, t.load_axis(8.0)[3]);
        assert!((s1 - s8).abs() < 1e-12);
    }

    #[test]
    fn switching_energy_grows_with_drive_slew_and_load() {
        let t = Technology::new();
        let a = inv();
        let o = &a.outputs[0];
        let base = t.switching_energy(&a, o, 1.0, 0.02, 0.002);
        assert!(base > 0.0);
        assert!(t.switching_energy(&a, o, 4.0, 0.02, 0.002) > base);
        assert!(t.switching_energy(&a, o, 1.0, 0.40, 0.002) > base);
        assert!(t.switching_energy(&a, o, 1.0, 0.02, 0.020) > base);
    }

    #[test]
    fn leakage_scales_with_drive() {
        let t = Technology::new();
        let a = inv();
        assert!(t.leakage_power(&a, 8.0) > 4.0 * t.leakage_power(&a, 1.0));
        assert!(t.leakage_power(&a, 1.0) > 0.0);
    }

    #[test]
    fn complex_outputs_are_slower() {
        let t = Technology::new();
        let ad2 = standard_inventory()
            .into_iter()
            .find(|a| a.prefix == "AD2")
            .unwrap();
        let s = ad2.outputs.iter().find(|o| o.pin == "S").unwrap();
        let co = ad2.outputs.iter().find(|o| o.pin == "CO").unwrap();
        let ds = t.delay(&ad2, s, 2.0, 0.05, 0.01);
        let dco = t.delay(&ad2, co, 2.0, 0.05, 0.01);
        assert!(ds > dco, "sum {ds} should be slower than carry {dco}");
    }
}
