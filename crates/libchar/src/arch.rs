//! Cell archetypes and the 304-cell inventory of Appendix A.
//!
//! An *archetype* describes one logic function family (e.g. two-input NAND):
//! its pins, Liberty function strings, logical-effort parameters, and the
//! list of drive strengths it is offered in. The inventory mirrors the
//! paper's Appendix A census: 19 inverters, 36 AND/OR, 46 NAND, 43 NOR,
//! 29 XNOR/XOR, 34 adders, 27 multiplexers, 51 flip-flops, 12 latches and
//! 7 other cells — 304 in total.

/// One output of an archetype: the pin name and its logic function.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArchOutput {
    /// Output pin name (`Z`, `S`, `CO`, `Q`).
    pub pin: String,
    /// Liberty boolean function of the output.
    pub function: String,
    /// Relative complexity factor of this output's logic cone; scales the
    /// parasitic delay (an adder's sum output is slower than its carry).
    pub complexity: f64,
}

/// Sequential behaviour of an archetype.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SequentialKind {
    /// Purely combinational.
    None,
    /// Rising-edge D flip-flop: arcs run from the clock pin.
    FlipFlop,
    /// Transparent latch: arcs run from the enable pin.
    Latch,
}

/// A cell archetype (logic family at all drive strengths).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Archetype {
    /// Name prefix, e.g. `ND2`; full cell names are `ND2_<drive>`.
    pub prefix: String,
    /// Data input pin names.
    pub inputs: Vec<String>,
    /// Clock/enable pin name for sequential archetypes.
    pub clock: Option<String>,
    /// Outputs.
    pub outputs: Vec<ArchOutput>,
    /// Logical effort `g` of the family (input-cap multiplier and effort
    /// delay multiplier; 1.0 for an inverter).
    pub logical_effort: f64,
    /// Parasitic delay `p` in units of the technology time constant.
    pub parasitic: f64,
    /// Layout area of the unit-drive variant (µm²); grows sub-linearly with
    /// drive.
    pub unit_area: f64,
    /// Sequential behaviour.
    pub sequential: SequentialKind,
    /// Drive strengths the family is offered in.
    pub drives: Vec<f64>,
}

impl Archetype {
    /// Full cell name for one drive strength, using `P` as the decimal
    /// separator per the paper's naming convention.
    pub fn cell_name(&self, drive: f64) -> String {
        format!("{}_{}", self.prefix, format_drive(drive))
    }

    /// Number of cells this archetype contributes to the library.
    pub fn variant_count(&self) -> usize {
        self.drives.len()
    }

    /// Area of the variant at `drive`: a fixed overhead plus a linear
    /// transistor-width term, matching how real libraries scale.
    pub fn area(&self, drive: f64) -> f64 {
        self.unit_area * (0.45 + 0.55 * drive)
    }
}

/// Formats a drive strength with `P` as decimal separator (`2.5` → `"2P5"`).
pub fn format_drive(drive: f64) -> String {
    if (drive.fract()).abs() < 1e-9 {
        format!("{}", drive as i64)
    } else {
        format!("{:.1}", drive).replace('.', "P")
    }
}

fn out(pin: &str, function: &str, complexity: f64) -> ArchOutput {
    ArchOutput {
        pin: pin.to_string(),
        function: function.to_string(),
        complexity,
    }
}

fn combinational(
    prefix: &str,
    inputs: &[&str],
    function: &str,
    g: f64,
    p: f64,
    unit_area: f64,
    drives: &[f64],
) -> Archetype {
    Archetype {
        prefix: prefix.to_string(),
        inputs: inputs.iter().map(|s| s.to_string()).collect(),
        clock: None,
        outputs: vec![out("Z", function, 1.0)],
        logical_effort: g,
        parasitic: p,
        unit_area,
        sequential: SequentialKind::None,
        drives: drives.to_vec(),
    }
}

/// The complete archetype inventory. The sum of variant counts is exactly
/// 304 (checked by a unit test and relied upon by the experiments).
#[allow(clippy::vec_init_then_push)] // entries are built with interleaved locals
pub fn standard_inventory() -> Vec<Archetype> {
    let d12: &[f64] = &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0, 16.0];
    let d10: &[f64] = &[1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0];
    let d9: &[f64] = &[1.0, 1.5, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0];
    let d6: &[f64] = &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0];

    let mut inv = Vec::new();

    // 19 inverters.
    inv.push(combinational(
        "INV",
        &["A"],
        "!A",
        1.0,
        1.0,
        0.9,
        &[
            0.5, 0.7, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0, 16.0,
            20.0, 24.0, 32.0,
        ],
    ));

    // 36 AND/OR (6 functions x 6 drives).
    inv.push(combinational("AN2", &["A", "B"], "A&B", 1.45, 2.3, 1.4, d6));
    inv.push(combinational(
        "AN3",
        &["A", "B", "C"],
        "A&B&C",
        1.65,
        2.8,
        1.7,
        d6,
    ));
    inv.push(combinational(
        "AN4",
        &["A", "B", "C", "D"],
        "A&B&C&D",
        1.85,
        3.3,
        2.0,
        d6,
    ));
    inv.push(combinational("OR2", &["A", "B"], "A|B", 1.7, 2.5, 1.4, d6));
    inv.push(combinational(
        "OR3",
        &["A", "B", "C"],
        "A|B|C",
        2.1,
        3.1,
        1.7,
        d6,
    ));
    inv.push(combinational(
        "OR4",
        &["A", "B", "C", "D"],
        "A|B|C|D",
        2.5,
        3.7,
        2.0,
        d6,
    ));

    // 46 NAND: ND2 x12, ND3 x12, ND4 x12, ND2B x10.
    inv.push(combinational(
        "ND2",
        &["A", "B"],
        "!(A&B)",
        4.0 / 3.0,
        2.0,
        1.2,
        d12,
    ));
    inv.push(combinational(
        "ND3",
        &["A", "B", "C"],
        "!(A&B&C)",
        5.0 / 3.0,
        3.0,
        1.5,
        d12,
    ));
    inv.push(combinational(
        "ND4",
        &["A", "B", "C", "D"],
        "!(A&B&C&D)",
        2.0,
        4.0,
        1.8,
        d12,
    ));
    inv.push(combinational(
        "ND2B",
        &["A", "B"],
        "!(!A&B)",
        1.5,
        2.4,
        1.4,
        d10,
    ));

    // 43 NOR: NR2 x12, NR3 x12, NR4 x9, NR2B x10.
    inv.push(combinational(
        "NR2",
        &["A", "B"],
        "!(A|B)",
        5.0 / 3.0,
        2.2,
        1.2,
        d12,
    ));
    inv.push(combinational(
        "NR3",
        &["A", "B", "C"],
        "!(A|B|C)",
        7.0 / 3.0,
        3.4,
        1.5,
        d12,
    ));
    inv.push(combinational(
        "NR4",
        &["A", "B", "C", "D"],
        "!(A|B|C|D)",
        3.0,
        4.6,
        1.8,
        d9,
    ));
    inv.push(combinational(
        "NR2B",
        &["A", "B"],
        "!(!A|B)",
        1.9,
        2.6,
        1.4,
        d10,
    ));

    // 29 XNOR/XOR: XN2 x10, XN3 x9, EO2 x10.
    inv.push(combinational(
        "XN2",
        &["A", "B"],
        "!(A^B)",
        2.2,
        4.0,
        1.9,
        d10,
    ));
    inv.push(combinational(
        "XN3",
        &["A", "B", "C"],
        "!(A^B^C)",
        2.8,
        5.5,
        2.5,
        d9,
    ));
    inv.push(combinational("EO2", &["A", "B"], "A^B", 2.2, 4.0, 1.9, d10));

    // 34 adders: AD1 (half) x10, AD2 (full) x12, AD3 (full, fast carry) x12.
    inv.push(Archetype {
        prefix: "AD1".to_string(),
        inputs: vec!["A".to_string(), "B".to_string()],
        clock: None,
        outputs: vec![out("S", "A^B", 1.15), out("CO", "A&B", 0.9)],
        logical_effort: 2.3,
        parasitic: 4.5,
        unit_area: 2.4,
        sequential: SequentialKind::None,
        drives: d10.to_vec(),
    });
    inv.push(Archetype {
        prefix: "AD2".to_string(),
        inputs: vec!["A".to_string(), "B".to_string(), "C".to_string()],
        clock: None,
        outputs: vec![out("S", "A^B^C", 1.25), out("CO", "(A&B)|(C&(A^B))", 1.0)],
        logical_effort: 2.6,
        parasitic: 5.5,
        unit_area: 3.2,
        sequential: SequentialKind::None,
        drives: d12.to_vec(),
    });
    inv.push(Archetype {
        prefix: "AD3".to_string(),
        inputs: vec!["A".to_string(), "B".to_string(), "C".to_string()],
        clock: None,
        outputs: vec![out("S", "A^B^C", 1.2), out("CO", "(A&B)|(C&(A^B))", 0.75)],
        logical_effort: 2.8,
        parasitic: 5.0,
        unit_area: 3.8,
        sequential: SequentialKind::None,
        drives: d12.to_vec(),
    });

    // 27 muxes: MU2 x14, MU4 x13.
    let d14: Vec<f64> = vec![
        0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.0, 8.0, 12.0, 16.0,
    ];
    let d13: Vec<f64> = d14[1..].to_vec();
    inv.push(Archetype {
        prefix: "MU2".to_string(),
        inputs: vec!["A".to_string(), "B".to_string(), "S0".to_string()],
        clock: None,
        outputs: vec![out("Z", "(A&!S0)|(B&S0)", 1.0)],
        logical_effort: 2.0,
        parasitic: 3.2,
        unit_area: 2.2,
        sequential: SequentialKind::None,
        drives: d14,
    });
    inv.push(Archetype {
        prefix: "MU4".to_string(),
        inputs: vec![
            "A".to_string(),
            "B".to_string(),
            "C".to_string(),
            "D".to_string(),
            "S0".to_string(),
            "S1".to_string(),
        ],
        clock: None,
        outputs: vec![out("Z", "(A&!S0&!S1)|(B&S0&!S1)|(C&!S0&S1)|(D&S0&S1)", 1.2)],
        logical_effort: 2.6,
        parasitic: 4.8,
        unit_area: 3.6,
        sequential: SequentialKind::None,
        drives: d13,
    });

    // 51 flip-flops: DF x13, DFR x13, DFS x13, DFRS x12.
    let ff_d13: Vec<f64> = vec![
        0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0,
    ];
    let ff_d12: Vec<f64> = ff_d13[1..].to_vec();
    let ff = |prefix: &str, extra: &[&str], p: f64, area: f64, drives: &[f64]| Archetype {
        prefix: prefix.to_string(),
        inputs: std::iter::once("D")
            .chain(extra.iter().copied())
            .map(|s| s.to_string())
            .collect(),
        clock: Some("CK".to_string()),
        outputs: vec![out("Q", "D", 1.0)],
        logical_effort: 1.5,
        parasitic: p,
        unit_area: area,
        sequential: SequentialKind::FlipFlop,
        drives: drives.to_vec(),
    };
    inv.push(ff("DF", &[], 6.0, 4.0, &ff_d13));
    inv.push(ff("DFR", &["RN"], 6.6, 4.6, &ff_d13));
    inv.push(ff("DFS", &["SN"], 6.6, 4.6, &ff_d13));
    inv.push(ff("DFRS", &["RN", "SN"], 7.2, 5.2, &ff_d12));

    // 12 latches: LAH x6, LAL x6.
    let latch = |prefix: &str| Archetype {
        prefix: prefix.to_string(),
        inputs: vec!["D".to_string()],
        clock: Some("G".to_string()),
        outputs: vec![out("Q", "D", 1.0)],
        logical_effort: 1.4,
        parasitic: 4.2,
        unit_area: 2.8,
        sequential: SequentialKind::Latch,
        drives: d6.to_vec(),
    };
    inv.push(latch("LAH"));
    inv.push(latch("LAL"));

    // 7 others: DEL1 x4 delay buffers, GCKB x3 clock-gating buffers.
    inv.push(combinational(
        "DEL1",
        &["A"],
        "A",
        1.2,
        9.0,
        2.0,
        &[1.0, 2.0, 4.0, 8.0],
    ));
    inv.push(combinational(
        "GCKB",
        &["A"],
        "A",
        1.3,
        2.6,
        1.6,
        &[2.0, 4.0, 8.0],
    ));

    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn inventory_totals_304_cells() {
        let total: usize = standard_inventory()
            .iter()
            .map(Archetype::variant_count)
            .sum();
        assert_eq!(total, 304);
    }

    #[test]
    fn appendix_a_census_matches() {
        // Group by the paper's Appendix A categories via the cell-name
        // prefix, mirroring varitune_liberty::CellKind.
        let mut census: BTreeMap<&str, usize> = BTreeMap::new();
        for a in standard_inventory() {
            let key = match a.prefix.as_str() {
                "INV" => "inverter",
                "AN2" | "AN3" | "AN4" | "OR2" | "OR3" | "OR4" => "or",
                "ND2" | "ND3" | "ND4" | "ND2B" => "nand",
                "NR2" | "NR3" | "NR4" | "NR2B" => "nor",
                "XN2" | "XN3" | "EO2" => "xnor",
                "AD1" | "AD2" | "AD3" => "adder",
                "MU2" | "MU4" => "mux",
                "DF" | "DFR" | "DFS" | "DFRS" => "flipflop",
                "LAH" | "LAL" => "latch",
                _ => "other",
            };
            *census.entry(key).or_default() += a.variant_count();
        }
        assert_eq!(census["inverter"], 19);
        assert_eq!(census["or"], 36);
        assert_eq!(census["nand"], 46);
        assert_eq!(census["nor"], 43);
        assert_eq!(census["xnor"], 29);
        assert_eq!(census["adder"], 34);
        assert_eq!(census["mux"], 27);
        assert_eq!(census["flipflop"], 51);
        assert_eq!(census["latch"], 12);
        assert_eq!(census["other"], 7);
    }

    #[test]
    fn cell_names_use_p_decimal_separator() {
        let a = &standard_inventory()[0];
        assert_eq!(a.cell_name(0.5), "INV_0P5");
        assert_eq!(a.cell_name(4.0), "INV_4");
        assert_eq!(a.cell_name(2.5), "INV_2P5");
    }

    #[test]
    fn all_names_are_unique() {
        let mut names = std::collections::BTreeSet::new();
        for a in standard_inventory() {
            for &d in &a.drives {
                assert!(names.insert(a.cell_name(d)), "duplicate {}", a.cell_name(d));
            }
        }
        assert_eq!(names.len(), 304);
    }

    #[test]
    fn area_grows_with_drive_but_sublinearly() {
        let a = &standard_inventory()[0];
        let a1 = a.area(1.0);
        let a4 = a.area(4.0);
        assert!(a4 > a1);
        assert!(a4 < 4.0 * a1, "area should scale sub-linearly");
    }

    #[test]
    fn sequential_archetypes_have_clock_pins() {
        for a in standard_inventory() {
            match a.sequential {
                SequentialKind::None => assert!(a.clock.is_none(), "{}", a.prefix),
                _ => assert!(a.clock.is_some(), "{}", a.prefix),
            }
        }
    }

    #[test]
    fn drive_lists_are_positive_and_sorted() {
        for a in standard_inventory() {
            assert!(a.drives.iter().all(|&d| d > 0.0), "{}", a.prefix);
            assert!(
                a.drives.windows(2).all(|w| w[0] < w[1]),
                "{} drives not sorted",
                a.prefix
            );
        }
    }

    #[test]
    fn format_drive_cases() {
        assert_eq!(format_drive(1.0), "1");
        assert_eq!(format_drive(0.5), "0P5");
        assert_eq!(format_drive(12.0), "12");
        assert_eq!(format_drive(1.5), "1P5");
    }
}
