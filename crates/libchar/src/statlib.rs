//! The statistical library of §IV.
//!
//! Given N Monte-Carlo characterized libraries, every LUT entry is collected
//! across the N copies and reduced to its mean and standard deviation. The
//! result is stored as **two structurally identical Liberty libraries**: one
//! whose tables hold means, one whose tables hold sigmas — exactly the
//! "library file with identical tables ... which contains local variation
//! statistics instead" described in the paper.
//!
//! Internally the reduction is *columnar*: the first library's structure is
//! flattened once into a `StructureIndex` (one slot per LUT, one flat
//! entry range per slot), every further library is validated against that
//! index up front (typed [`StatLibError`]s, not string diffs), and the
//! Welford merge then runs over flat `Vec<f64>` columns — libraries outer,
//! entries inner — so the hot loop never touches a name, an `Option` or a
//! nested `Vec` again. Each entry sees exactly the same push sequence as the
//! original per-entry accumulator, so the result is bit-identical.

use std::error::Error;
use std::fmt;

use varitune_liberty::{CellId, InterpolateError, Library, Lut, PinId, TimingArc};
use varitune_variation::rng::rng_from;

/// Which of an arc's four tables a query refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TableKind {
    /// Rise propagation delay.
    CellRise,
    /// Fall propagation delay.
    CellFall,
    /// Output rise transition.
    RiseTransition,
    /// Output fall transition.
    FallTransition,
}

impl TableKind {
    /// The two delay kinds.
    pub const DELAYS: [TableKind; 2] = [TableKind::CellRise, TableKind::CellFall];

    /// All four kinds, in canonical (structure-index) order.
    pub const ALL: [TableKind; 4] = [
        TableKind::CellRise,
        TableKind::CellFall,
        TableKind::RiseTransition,
        TableKind::FallTransition,
    ];

    /// Selects this kind's table on `arc`.
    pub fn of(self, arc: &TimingArc) -> Option<&Lut> {
        match self {
            TableKind::CellRise => arc.cell_rise.as_ref(),
            TableKind::CellFall => arc.cell_fall.as_ref(),
            TableKind::RiseTransition => arc.rise_transition.as_ref(),
            TableKind::FallTransition => arc.fall_transition.as_ref(),
        }
    }

    fn of_mut(self, arc: &mut TimingArc) -> Option<&mut Lut> {
        match self {
            TableKind::CellRise => arc.cell_rise.as_mut(),
            TableKind::CellFall => arc.cell_fall.as_mut(),
            TableKind::RiseTransition => arc.rise_transition.as_mut(),
            TableKind::FallTransition => arc.fall_transition.as_mut(),
        }
    }
}

/// A mean/sigma pair of same-shaped tables for one arc table kind.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StatTable {
    /// Entry-wise means.
    pub mean: Lut,
    /// Entry-wise standard deviations.
    pub sigma: Lut,
}

impl StatTable {
    /// Interpolates `(mean, sigma)` at an operating point.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`] from either table.
    pub fn interpolate(&self, slew: f64, load: f64) -> Result<(f64, f64), InterpolateError> {
        Ok((
            self.mean.interpolate(slew, load)?,
            self.sigma.interpolate(slew, load)?,
        ))
    }
}

/// A structural difference between two characterized libraries, carrying the
/// offending [`CellId`]/[`PinId`] instead of pre-rendered strings — names
/// are only materialized at the report boundary (`Display` or
/// [`StatLibError::describe`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatLibError {
    /// The libraries contain different numbers of cells.
    CellCount {
        /// Cell count of the reference (first) library.
        expected: usize,
        /// Cell count of the offending library.
        found: usize,
    },
    /// The cell at one position has different names in the two libraries.
    CellName {
        /// Position of the offending cell.
        cell: CellId,
        /// Name in the reference library.
        expected: String,
        /// Name in the offending library.
        found: String,
    },
    /// A cell has a different number of pins.
    PinCount {
        /// The offending cell.
        cell: CellId,
    },
    /// A pin's name, timing-arc list or power-group list differs.
    ArcStructure {
        /// The offending cell.
        cell: CellId,
        /// The offending pin.
        pin: PinId,
    },
    /// A timing table is present/absent or shaped differently.
    TableShape {
        /// The offending cell.
        cell: CellId,
        /// The offending pin.
        pin: PinId,
        /// Which of the arc's four tables differs.
        kind: TableKind,
    },
    /// An internal-power table is present/absent or shaped differently.
    PowerShape {
        /// The offending cell.
        cell: CellId,
        /// The offending pin.
        pin: PinId,
    },
}

impl StatLibError {
    /// Renders the error with cell/pin *names* resolved against `lib` — the
    /// report-boundary counterpart of the id-carrying `Display` output.
    pub fn describe(&self, lib: &Library) -> String {
        let cell_name = |id: CellId| {
            lib.cells
                .get(id.index())
                .map_or_else(|| format!("cell#{}", id.0), |c| c.name.clone())
        };
        let pin_name = |cid: CellId, pid: PinId| {
            let (c, p) = lib.interner().pin_of(pid);
            lib.cells
                .get(c.index())
                .and_then(|cell| cell.pins.get(p))
                .map_or_else(|| format!("pin#{}", pid.0), |pin| pin.name.clone())
                + if c == cid { "" } else { "?" }
        };
        match self {
            StatLibError::CellCount { expected, found } => {
                format!("cell count {expected} vs {found}")
            }
            StatLibError::CellName {
                cell,
                expected,
                found,
            } => format!("cell #{} name {expected} vs {found}", cell.0),
            StatLibError::PinCount { cell } => {
                format!("{}: pin count differs", cell_name(*cell))
            }
            StatLibError::ArcStructure { cell, pin } => format!(
                "{}/{}: arc structure differs",
                cell_name(*cell),
                pin_name(*cell, *pin)
            ),
            StatLibError::TableShape { cell, pin, kind } => format!(
                "{}/{}: table {kind:?} shape differs",
                cell_name(*cell),
                pin_name(*cell, *pin)
            ),
            StatLibError::PowerShape { cell, pin } => format!(
                "{}/{}: power table shape differs",
                cell_name(*cell),
                pin_name(*cell, *pin)
            ),
        }
    }
}

impl fmt::Display for StatLibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatLibError::CellCount { expected, found } => {
                write!(f, "cell count {expected} vs {found}")
            }
            StatLibError::CellName {
                cell,
                expected,
                found,
            } => write!(f, "cell #{} name {expected} vs {found}", cell.0),
            StatLibError::PinCount { cell } => write!(f, "cell #{}: pin count differs", cell.0),
            StatLibError::ArcStructure { cell, pin } => {
                write!(f, "cell #{} pin #{}: arc structure differs", cell.0, pin.0)
            }
            StatLibError::TableShape { cell, pin, kind } => write!(
                f,
                "cell #{} pin #{}: table {kind:?} shape differs",
                cell.0, pin.0
            ),
            StatLibError::PowerShape { cell, pin } => write!(
                f,
                "cell #{} pin #{}: power table shape differs",
                cell.0, pin.0
            ),
        }
    }
}

impl Error for StatLibError {}

/// Error building a [`StatLibrary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildStatError {
    /// No input libraries were provided.
    Empty,
    /// The input libraries do not share an identical cell/arc/table
    /// structure.
    StructureMismatch {
        /// Index of the offending library in the input slice.
        library: usize,
        /// The first difference found, in typed form.
        error: StatLibError,
    },
}

impl fmt::Display for BuildStatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildStatError::Empty => write!(f, "no input libraries"),
            BuildStatError::StructureMismatch { library, error } => {
                write!(f, "library #{library} differs structurally: {error}")
            }
        }
    }
}

impl Error for BuildStatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildStatError::Empty => None,
            BuildStatError::StructureMismatch { error, .. } => Some(error),
        }
    }
}

/// Where one LUT slot lives inside a cell.
#[derive(Clone, Copy)]
enum SlotLoc {
    /// `kind`'s table of timing arc `arc` on pin `pin`.
    Timing {
        pin: usize,
        arc: usize,
        kind: TableKind,
    },
    /// Rise/fall table of internal-power group `group` on pin `pin`.
    Power {
        pin: usize,
        group: usize,
        rise: bool,
    },
}

/// One LUT of the flattened library structure.
struct Slot {
    cell: usize,
    loc: SlotLoc,
    /// Start of this slot's entries in the flat columns.
    offset: usize,
}

/// The first library's structure, flattened once: every LUT becomes a slot
/// with a contiguous entry range, in canonical order (cells, then pins, then
/// timing arcs × [`TableKind::ALL`], then power groups × rise/fall). All
/// gather/scatter traffic of the merge goes through this index; no name or
/// `Option` is consulted per entry.
struct StructureIndex {
    slots: Vec<Slot>,
    total: usize,
}

impl StructureIndex {
    fn build(lib: &Library) -> Self {
        let mut slots = Vec::new();
        let mut total = 0usize;
        for (ci, cell) in lib.cells.iter().enumerate() {
            for (pi, pin) in cell.pins.iter().enumerate() {
                for (ai, arc) in pin.timing.iter().enumerate() {
                    for kind in TableKind::ALL {
                        let Some(t) = kind.of(arc) else { continue };
                        slots.push(Slot {
                            cell: ci,
                            loc: SlotLoc::Timing {
                                pin: pi,
                                arc: ai,
                                kind,
                            },
                            offset: total,
                        });
                        total += t.rows() * t.cols();
                    }
                }
                for (gi, group) in pin.internal_power.iter().enumerate() {
                    for (rise, t) in [(true, &group.rise_power), (false, &group.fall_power)] {
                        let Some(t) = t.as_ref() else { continue };
                        slots.push(Slot {
                            cell: ci,
                            loc: SlotLoc::Power {
                                pin: pi,
                                group: gi,
                                rise,
                            },
                            offset: total,
                        });
                        total += t.rows() * t.cols();
                    }
                }
            }
        }
        Self { slots, total }
    }

    /// Copies every slot's entries of `lib` (structure already validated)
    /// into `column`, row-major per table, slots in index order.
    fn gather(&self, lib: &Library, column: &mut Vec<f64>) {
        column.clear();
        for slot in &self.slots {
            // Slots were built from this library's structure (doc above).
            #[allow(clippy::expect_used)]
            let t = slot_table(lib, slot).expect("structure validated");
            for row in &t.values {
                column.extend_from_slice(row);
            }
        }
    }

    /// Writes `column` back into `lib`'s tables, inverse of `gather`.
    fn scatter(&self, lib: &mut Library, column: &[f64]) {
        for slot in &self.slots {
            // Slots were built from this library's structure (doc above).
            #[allow(clippy::expect_used)]
            let t = slot_table_mut(lib, slot).expect("structure validated");
            let mut k = slot.offset;
            for row in &mut t.values {
                for v in row {
                    *v = column[k];
                    k += 1;
                }
            }
        }
    }
}

fn slot_table<'a>(lib: &'a Library, slot: &Slot) -> Option<&'a Lut> {
    let cell = lib.cells.get(slot.cell)?;
    match slot.loc {
        SlotLoc::Timing { pin, arc, kind } => kind.of(cell.pins.get(pin)?.timing.get(arc)?),
        SlotLoc::Power { pin, group, rise } => {
            let g = cell.pins.get(pin)?.internal_power.get(group)?;
            if rise {
                g.rise_power.as_ref()
            } else {
                g.fall_power.as_ref()
            }
        }
    }
}

fn slot_table_mut<'a>(lib: &'a mut Library, slot: &Slot) -> Option<&'a mut Lut> {
    let cell = lib.cells.get_mut(slot.cell)?;
    match slot.loc {
        SlotLoc::Timing { pin, arc, kind } => {
            kind.of_mut(cell.pins.get_mut(pin)?.timing.get_mut(arc)?)
        }
        SlotLoc::Power { pin, group, rise } => {
            let g = cell.pins.get_mut(pin)?.internal_power.get_mut(group)?;
            if rise {
                g.rise_power.as_mut()
            } else {
                g.fall_power.as_mut()
            }
        }
    }
}

/// Delay-sigma entries stored columnar: every output-pin `cell_rise` /
/// `cell_fall` sigma entry of a cell concatenated into one contiguous
/// `f64` block, indexed by [`CellId`]. The tuner's per-cell selection metric
/// (worst delay sigma) becomes a flat slice scan instead of a walk over the
/// Liberty tree.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SigmaColumns {
    values: Vec<f64>,
    /// `offsets[i]..offsets[i + 1]` is cell `i`'s block; length is
    /// `cell_count + 1`.
    offsets: Vec<u32>,
}

impl SigmaColumns {
    /// Flattens the delay-sigma entries of `sigma` (a per-entry
    /// standard-deviation library) into per-cell blocks.
    pub fn from_library(sigma: &Library) -> Self {
        let mut values = Vec::new();
        let mut offsets = Vec::with_capacity(sigma.cells.len() + 1);
        offsets.push(0u32);
        for cell in &sigma.cells {
            for pin in cell.output_pins() {
                for arc in &pin.timing {
                    for kind in TableKind::DELAYS {
                        if let Some(t) = kind.of(arc) {
                            for row in &t.values {
                                values.extend_from_slice(row);
                            }
                        }
                    }
                }
            }
            offsets.push(values.len() as u32);
        }
        Self { values, offsets }
    }

    /// The contiguous delay-sigma block of `cell` (empty when the id is out
    /// of range or the cell has no delay tables).
    pub fn cell(&self, cell: CellId) -> &[f64] {
        let i = cell.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Largest delay-sigma entry of `cell`, `None` when it has none.
    pub fn worst(&self, cell: CellId) -> Option<f64> {
        self.cell(cell)
            .iter()
            .copied()
            .fold(None, |w, v| Some(w.map_or(v, |w: f64| w.max(v))))
    }
}

/// Lazily built [`SigmaColumns`] behind [`StatLibrary::sigma_columns`].
/// A cache over the `sigma` library, not part of the value: clones start
/// empty and any two caches compare equal, so `StatLibrary`'s derived
/// `Clone`/`PartialEq` keep their value semantics (the same contract as the
/// liberty interner cache).
#[derive(Default)]
struct ColumnsCache(std::sync::OnceLock<SigmaColumns>);

impl Clone for ColumnsCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for ColumnsCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl fmt::Debug for ColumnsCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ColumnsCache")
    }
}

/// The statistical library: per-entry mean and sigma across N characterized
/// libraries, stored as two structurally identical Liberty libraries plus a
/// columnar per-cell delay-sigma summary.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StatLibrary {
    /// Library whose LUT values are entry-wise means.
    pub mean: Library,
    /// Library whose LUT values are entry-wise standard deviations.
    pub sigma: Library,
    /// Number of Monte-Carlo libraries the statistics were computed from.
    pub sample_count: usize,
    /// Columnar per-cell delay-sigma blocks, derived lazily from `sigma`.
    columns: ColumnsCache,
}

impl StatLibrary {
    /// Builds the statistical library from `libs` (the §IV procedure).
    ///
    /// The first library's structure is flattened once into a
    /// `StructureIndex`; every further library is validated against the
    /// first in a single typed pass, and the per-entry Welford merge runs
    /// columnar (libraries outer, flat entries inner). The merged values are
    /// bit-identical to the per-entry accumulator formulation.
    ///
    /// # Errors
    ///
    /// Returns [`BuildStatError::Empty`] for an empty slice and
    /// [`BuildStatError::StructureMismatch`] if any library's cells, arcs or
    /// table shapes differ from the first library's.
    pub fn from_libraries(libs: &[Library]) -> Result<Self, BuildStatError> {
        let first = libs.first().ok_or(BuildStatError::Empty)?;
        for (k, lib) in libs.iter().enumerate().skip(1) {
            check_same_structure(first, lib)
                .map_err(|error| BuildStatError::StructureMismatch { library: k, error })?;
        }

        let index = StructureIndex::build(first);

        // Columnar Welford merge. Per entry this replays exactly
        // `Accumulator::push` (n += 1; delta = x - mean; mean += delta / n;
        // m2 += delta * (x - mean)) with the libraries visited in input
        // order, so mean and sigma match the per-entry reduction to the bit.
        let total = index.total;
        let mut mean_col = vec![0.0f64; total];
        let mut m2 = vec![0.0f64; total];
        let mut column: Vec<f64> = Vec::with_capacity(total);
        let mut n = 0usize;
        for lib in libs {
            index.gather(lib, &mut column);
            n += 1;
            let nf = n as f64;
            for (e, &x) in column.iter().enumerate() {
                let delta = x - mean_col[e];
                mean_col[e] += delta / nf;
                m2[e] += delta * (x - mean_col[e]);
            }
        }
        let sigma_col: Vec<f64> = if n < 2 {
            vec![0.0; total]
        } else {
            let bessel = (n - 1) as f64;
            m2.iter().map(|&v| (v / bessel).sqrt()).collect()
        };

        let mut mean = first.clone();
        mean.name = "STAT_MEAN".to_string();
        let mut sigma = first.clone();
        sigma.name = "STAT_SIGMA".to_string();
        index.scatter(&mut mean, &mean_col);
        index.scatter(&mut sigma, &sigma_col);

        Ok(Self {
            mean,
            sigma,
            sample_count: libs.len(),
            columns: ColumnsCache::default(),
        })
    }

    /// Characterizes the statistical library **directly** from the nominal
    /// library: each Monte-Carlo trial streams its perturbed LUT values
    /// into a flat column (no intermediate `Library` is materialized, no
    /// per-library structure validation is needed — every column derives
    /// from the same nominal structure), and the columns feed the same
    /// Welford merge as [`Self::from_libraries`].
    ///
    /// Bit-identical to
    /// `Self::from_libraries(&generate_mc_libraries_threaded(nominal, cfg,
    /// n, seed, threads))` for every thread count, at a fraction of the
    /// allocation traffic; the equivalence is pinned by a test.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_monte_carlo(
        nominal: &Library,
        cfg: &crate::GenerateConfig,
        n: usize,
        seed: u64,
        threads: usize,
    ) -> Self {
        #[allow(clippy::expect_used)] // infallible: no cancel scope is consulted here
        Self::try_from_monte_carlo(nominal, cfg, n, seed, threads, false)
            .expect("uncancellable characterization cannot be cancelled")
    }

    /// Cancellable form of [`Self::from_monte_carlo`]: when `cancellable`
    /// is true, every Monte-Carlo trial starts with a
    /// [`varitune_variation::cancel::check`] checkpoint against the current
    /// scope's [`varitune_variation::CancelToken`], so a served request's
    /// deadline can abandon the characterization between trials. A run that
    /// completes is bit-identical to [`Self::from_monte_carlo`] — the
    /// checkpoint only ever aborts, never perturbs.
    ///
    /// # Errors
    ///
    /// [`varitune_variation::Cancelled`] once the current scope's token has
    /// fired (only possible with `cancellable == true`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn try_from_monte_carlo(
        nominal: &Library,
        cfg: &crate::GenerateConfig,
        n: usize,
        seed: u64,
        threads: usize,
        cancellable: bool,
    ) -> Result<Self, varitune_variation::Cancelled> {
        assert!(n > 0, "need at least one MC library");
        let _span = varitune_trace::span!("libchar.mc_characterize");
        // The perturbation leaves structure (and all non-slot state except
        // the library name) untouched, so the nominal library's flattening
        // is the flattening of every trial.
        let index = StructureIndex::build(nominal);
        let total = index.total;
        // Column throughput: how many LUT entries stream through the
        // Welford merge. Workload-derived only, so the trace stays
        // bit-identical across thread counts.
        varitune_trace::add("libchar.mc_trials", n as u64);
        varitune_trace::add("libchar.column_values_merged", (n as u64) * (total as u64));
        varitune_trace::observe("libchar.column_entries", total as u64);
        let columns = varitune_variation::try_run_trials(n, threads, |k| {
            if cancellable {
                varitune_variation::cancel::check()?;
            }
            let mut column = Vec::with_capacity(total);
            crate::generate::perturb_into_column(
                nominal,
                cfg,
                rng_from(seed, "mc-lib", k as u64),
                &mut column,
            );
            Ok(column)
        })?;

        let mut mean_col = vec![0.0f64; total];
        let mut m2 = vec![0.0f64; total];
        let mut count = 0usize;
        for column in &columns {
            debug_assert_eq!(column.len(), total);
            count += 1;
            let nf = count as f64;
            for (e, &x) in column.iter().enumerate() {
                let delta = x - mean_col[e];
                mean_col[e] += delta / nf;
                m2[e] += delta * (x - mean_col[e]);
            }
        }
        let sigma_col: Vec<f64> = if count < 2 {
            vec![0.0; total]
        } else {
            let bessel = (count - 1) as f64;
            m2.iter().map(|&v| (v / bessel).sqrt()).collect()
        };

        let mut mean = nominal.clone();
        mean.name = "STAT_MEAN".to_string();
        let mut sigma = nominal.clone();
        sigma.name = "STAT_SIGMA".to_string();
        index.scatter(&mut mean, &mean_col);
        index.scatter(&mut sigma, &sigma_col);

        Ok(Self {
            mean,
            sigma,
            sample_count: n,
            columns: ColumnsCache::default(),
        })
    }

    /// Assembles a statistical library from already-built mean/sigma
    /// libraries (e.g. re-parsed from disk).
    pub fn from_parts(mean: Library, sigma: Library, sample_count: usize) -> Self {
        Self {
            mean,
            sigma,
            sample_count,
            columns: ColumnsCache::default(),
        }
    }

    /// The columnar per-cell delay-sigma blocks, built from `sigma` on
    /// first use. A snapshot: mutate `sigma` only before the first query
    /// (clones reset the cache).
    pub fn sigma_columns(&self) -> &SigmaColumns {
        self.columns
            .0
            .get_or_init(|| SigmaColumns::from_library(&self.sigma))
    }

    /// The mean/sigma pair for one arc table, cloned into a [`StatTable`].
    pub fn stat_table(
        &self,
        cell: &str,
        pin: &str,
        arc_idx: usize,
        kind: TableKind,
    ) -> Option<StatTable> {
        let m = kind.of(self.mean.cell(cell)?.pin(pin)?.timing.get(arc_idx)?)?;
        let s = kind.of(self.sigma.cell(cell)?.pin(pin)?.timing.get(arc_idx)?)?;
        Some(StatTable {
            mean: m.clone(),
            sigma: s.clone(),
        })
    }

    /// Worst-case (max over arcs and rise/fall) delay `(mean, sigma)` of
    /// `cell`'s output pin `pin` at an operating point — the quantity the
    /// statistical STA attaches to a mapped instance.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns `EmptyTable` if the pin has
    /// no delay tables.
    pub fn delay_stat(
        &self,
        cell: &str,
        pin: &str,
        slew: f64,
        load: f64,
    ) -> Result<(f64, f64), InterpolateError> {
        let mc = self
            .mean
            .cell(cell)
            .and_then(|c| c.pin(pin))
            .ok_or(InterpolateError::EmptyTable)?;
        let sc = self
            .sigma
            .cell(cell)
            .and_then(|c| c.pin(pin))
            .ok_or(InterpolateError::EmptyTable)?;
        worst_delay_over(&mc.timing, &sc.timing, slew, load)
    }

    /// Id-based form of [`StatLibrary::delay_stat`]: `cell` indexes the
    /// structurally shared cell list and `out_pin` is the position among the
    /// cell's output pins — no name resolution on the query path.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns `EmptyTable` when the id or
    /// pin position is out of range or the pin has no delay tables.
    pub fn delay_stat_id(
        &self,
        cell: CellId,
        out_pin: usize,
        slew: f64,
        load: f64,
    ) -> Result<(f64, f64), InterpolateError> {
        let mc = self
            .mean
            .cells
            .get(cell.index())
            .and_then(|c| c.output_pins().nth(out_pin))
            .ok_or(InterpolateError::EmptyTable)?;
        let sc = self
            .sigma
            .cells
            .get(cell.index())
            .and_then(|c| c.output_pins().nth(out_pin))
            .ok_or(InterpolateError::EmptyTable)?;
        worst_delay_over(&mc.timing, &sc.timing, slew, load)
    }

    /// Like [`StatLibrary::delay_stat`], but restricted to the arc from one
    /// `related_pin` — the precise query used when the critical input of a
    /// path cell is known (worst over rise/fall only).
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns `EmptyTable` when the cell,
    /// pin or arc cannot be found.
    pub fn delay_stat_arc(
        &self,
        cell: &str,
        pin: &str,
        related_pin: &str,
        slew: f64,
        load: f64,
    ) -> Result<(f64, f64), InterpolateError> {
        let mc = self
            .mean
            .cell(cell)
            .and_then(|c| c.pin(pin))
            .ok_or(InterpolateError::EmptyTable)?;
        let sc = self
            .sigma
            .cell(cell)
            .and_then(|c| c.pin(pin))
            .ok_or(InterpolateError::EmptyTable)?;
        let (Some(ma), Some(sa)) = (
            mc.timing.iter().find(|a| a.related_pin == related_pin),
            sc.timing.iter().find(|a| a.related_pin == related_pin),
        ) else {
            return Err(InterpolateError::EmptyTable);
        };
        worst_delay_over(
            std::slice::from_ref(ma),
            std::slice::from_ref(sa),
            slew,
            load,
        )
    }

    /// Id-based form of [`StatLibrary::delay_stat_arc`]: the arc is selected
    /// by the *input pin position* whose transition launches it, matching
    /// the critical-input index recorded by the timing engine.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns `EmptyTable` when the id,
    /// pin position or arc cannot be resolved.
    pub fn delay_stat_arc_id(
        &self,
        cell: CellId,
        out_pin: usize,
        input: usize,
        slew: f64,
        load: f64,
    ) -> Result<(f64, f64), InterpolateError> {
        let mcell = self
            .mean
            .cells
            .get(cell.index())
            .ok_or(InterpolateError::EmptyTable)?;
        let related = &mcell
            .input_pins()
            .nth(input)
            .ok_or(InterpolateError::EmptyTable)?
            .name;
        let mc = mcell
            .output_pins()
            .nth(out_pin)
            .ok_or(InterpolateError::EmptyTable)?;
        let sc = self
            .sigma
            .cells
            .get(cell.index())
            .and_then(|c| c.output_pins().nth(out_pin))
            .ok_or(InterpolateError::EmptyTable)?;
        let (Some(ma), Some(sa)) = (
            mc.timing.iter().find(|a| &a.related_pin == related),
            sc.timing.iter().find(|a| &a.related_pin == related),
        ) else {
            return Err(InterpolateError::EmptyTable);
        };
        worst_delay_over(
            std::slice::from_ref(ma),
            std::slice::from_ref(sa),
            slew,
            load,
        )
    }

    /// The largest delay-sigma entry anywhere in `cell`'s tables — a quick
    /// scalar summary used in reports and doc examples.
    pub fn worst_delay_sigma(&self, cell: &str) -> Option<f64> {
        self.worst_delay_sigma_id(self.sigma.cell_id(cell)?)
    }

    /// Id-based form of [`StatLibrary::worst_delay_sigma`]: one contiguous
    /// scan of the cell's columnar sigma block.
    pub fn worst_delay_sigma_id(&self, cell: CellId) -> Option<f64> {
        self.sigma_columns().worst(cell)
    }
}

/// Worst (max-mean) delay `(mean, sigma)` over `mean_arcs`/`sigma_arcs` ×
/// rise/fall at one operating point.
fn worst_delay_over(
    mean_arcs: &[TimingArc],
    sigma_arcs: &[TimingArc],
    slew: f64,
    load: f64,
) -> Result<(f64, f64), InterpolateError> {
    let mut best: Option<(f64, f64)> = None;
    for (ma, sa) in mean_arcs.iter().zip(sigma_arcs) {
        for kind in TableKind::DELAYS {
            let (Some(mt), Some(st)) = (kind.of(ma), kind.of(sa)) else {
                continue;
            };
            let m = mt.interpolate(slew, load)?;
            let s = st.interpolate(slew, load)?;
            best = Some(match best {
                Some((bm, bs)) if bm >= m => (bm, bs),
                _ => (m, s),
            });
        }
    }
    best.ok_or(InterpolateError::EmptyTable)
}

/// One-shot structural validation of `b` against the reference library `a`,
/// returning the first difference as a typed [`StatLibError`]. Runs once per
/// input library at construction; the merge itself never compares names.
fn check_same_structure(a: &Library, b: &Library) -> Result<(), StatLibError> {
    if a.cells.len() != b.cells.len() {
        return Err(StatLibError::CellCount {
            expected: a.cells.len(),
            found: b.cells.len(),
        });
    }
    let interner = a.interner();
    for (ci, (ca, cb)) in a.cells.iter().zip(&b.cells).enumerate() {
        let cell = CellId(ci as u32);
        if ca.name != cb.name {
            return Err(StatLibError::CellName {
                cell,
                expected: ca.name.clone(),
                found: cb.name.clone(),
            });
        }
        if ca.pins.len() != cb.pins.len() {
            return Err(StatLibError::PinCount { cell });
        }
        for (pi, (pa, pb)) in ca.pins.iter().zip(&cb.pins).enumerate() {
            let pin = interner.pin_id(cell, pi);
            if pa.name != pb.name
                || pa.timing.len() != pb.timing.len()
                || pa.internal_power.len() != pb.internal_power.len()
            {
                return Err(StatLibError::ArcStructure { cell, pin });
            }
            for (ta, tb) in pa.timing.iter().zip(&pb.timing) {
                for kind in TableKind::ALL {
                    match (kind.of(ta), kind.of(tb)) {
                        (None, None) => {}
                        (Some(x), Some(y)) if same_shape(x, y) => {}
                        _ => return Err(StatLibError::TableShape { cell, pin, kind }),
                    }
                }
            }
            for (ga, gb) in pa.internal_power.iter().zip(&pb.internal_power) {
                for (ta, tb) in [
                    (&ga.rise_power, &gb.rise_power),
                    (&ga.fall_power, &gb.fall_power),
                ] {
                    match (ta.as_ref(), tb.as_ref()) {
                        (None, None) => {}
                        (Some(x), Some(y)) if same_shape(x, y) => {}
                        _ => return Err(StatLibError::PowerShape { cell, pin }),
                    }
                }
            }
        }
    }
    Ok(())
}

fn same_shape(x: &Lut, y: &Lut) -> bool {
    x.rows() == y.rows()
        && x.cols() == y.cols()
        && x.index_slew == y.index_slew
        && x.index_load == y.index_load
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_mc_libraries, generate_nominal, GenerateConfig};

    fn stat_fixture(n: usize) -> StatLibrary {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let libs = generate_mc_libraries(&nominal, &cfg, n, 1234);
        StatLibrary::from_libraries(&libs).unwrap()
    }

    #[test]
    fn from_monte_carlo_is_bit_identical_to_from_libraries() {
        // The streaming characterization must replay from_libraries'
        // perturbation and merge exactly — same RNG draws, same Welford
        // order — at every thread count.
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let libs = generate_mc_libraries(&nominal, &cfg, 7, 1234);
        let reference = StatLibrary::from_libraries(&libs).unwrap();
        for threads in [1, 2, 4] {
            let fused = StatLibrary::from_monte_carlo(&nominal, &cfg, 7, 1234, threads);
            assert_eq!(fused.mean, reference.mean, "threads = {threads}");
            assert_eq!(fused.sigma, reference.sigma, "threads = {threads}");
            assert_eq!(fused.sample_count, reference.sample_count);
        }
    }

    #[test]
    fn cancellable_characterization_matches_uncancellable_when_it_completes() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let reference = StatLibrary::from_monte_carlo(&nominal, &cfg, 7, 1234, 2);
        let cancellable =
            StatLibrary::try_from_monte_carlo(&nominal, &cfg, 7, 1234, 2, true).unwrap();
        assert_eq!(cancellable.mean, reference.mean);
        assert_eq!(cancellable.sigma, reference.sigma);
    }

    #[test]
    fn fired_token_aborts_cancellable_characterization() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let token = varitune_variation::CancelToken::new();
        token.cancel();
        let result = varitune_variation::cancel::with_token(&token, || {
            StatLibrary::try_from_monte_carlo(&nominal, &cfg, 7, 1234, 2, true)
        });
        assert_eq!(result.unwrap_err(), varitune_variation::Cancelled);
        // An uncancellable run under the same fired token still completes.
        let ok = varitune_variation::cancel::with_token(&token, || {
            StatLibrary::try_from_monte_carlo(&nominal, &cfg, 7, 1234, 2, false)
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(
            StatLibrary::from_libraries(&[]).unwrap_err(),
            BuildStatError::Empty
        );
    }

    #[test]
    fn structure_mismatch_is_detected() {
        let cfg = GenerateConfig::small_for_tests();
        let a = generate_nominal(&cfg);
        let mut b = a.clone();
        b.cells.pop();
        let err = StatLibrary::from_libraries(&[a, b]).unwrap_err();
        assert!(matches!(
            err,
            BuildStatError::StructureMismatch { library: 1, .. }
        ));
    }

    #[test]
    fn structure_errors_carry_typed_ids() {
        let cfg = GenerateConfig::small_for_tests();
        let a = generate_nominal(&cfg);

        // A renamed cell is reported with its positional id and both names.
        let mut renamed = a.clone();
        renamed.cells[2].name = "WRONG".to_string();
        let err = StatLibrary::from_libraries(&[a.clone(), renamed]).unwrap_err();
        let BuildStatError::StructureMismatch { library: 1, error } = err else {
            panic!("expected structure mismatch, got {err:?}");
        };
        assert_eq!(
            error,
            StatLibError::CellName {
                cell: CellId(2),
                expected: a.cells[2].name.clone(),
                found: "WRONG".to_string(),
            }
        );
        assert!(error.describe(&a).contains(&a.cells[2].name));

        // A reshaped delay table is reported against the owning cell/pin id.
        let mut reshaped = a.clone();
        let pin_pos = reshaped.cells[0]
            .pins
            .iter()
            .position(|p| !p.timing.is_empty())
            .unwrap();
        reshaped.cells[0].pins[pin_pos].timing[0]
            .cell_rise
            .as_mut()
            .unwrap()
            .index_slew[0] += 1.0;
        let err = StatLibrary::from_libraries(&[a.clone(), reshaped]).unwrap_err();
        let BuildStatError::StructureMismatch { error, .. } = err else {
            panic!("expected structure mismatch");
        };
        assert_eq!(
            error,
            StatLibError::TableShape {
                cell: CellId(0),
                pin: a.interner().pin_id(CellId(0), pin_pos),
                kind: TableKind::CellRise,
            }
        );
    }

    #[test]
    fn mean_tracks_nominal() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let stat = stat_fixture(50);
        let nom = nominal.cell("INV_2").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap()
            .at(3, 3);
        let mean = stat.mean.cell("INV_2").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap()
            .at(3, 3);
        assert!((mean - nom).abs() / nom < 0.05, "{mean} vs {nom}");
    }

    #[test]
    fn sigma_is_positive_everywhere() {
        let stat = stat_fixture(20);
        for cell in &stat.sigma.cells {
            for pin in cell.output_pins() {
                for arc in &pin.timing {
                    for t in arc.all_tables() {
                        assert!(t.min_value().unwrap() > 0.0, "{}", cell.name);
                    }
                }
            }
        }
    }

    #[test]
    fn sigma_shrinks_with_drive_strength() {
        let stat = stat_fixture(40);
        let s1 = stat.worst_delay_sigma("INV_1").unwrap();
        let s8 = stat.worst_delay_sigma("INV_8").unwrap();
        assert!(s8 < s1, "INV_8 {s8} should be below INV_1 {s1}");
    }

    #[test]
    fn sigma_surface_climbs_toward_heavy_corner() {
        // The Fig. 4 shape: the far (slow slew, heavy load) corner of the
        // sigma LUT dominates the origin.
        let stat = stat_fixture(40);
        let lut = stat.sigma.cell("INV_1").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap();
        assert!(lut.at(6, 6) > lut.at(0, 0) * 2.0);
    }

    #[test]
    fn delay_stat_interpolates_and_takes_worst_arc() {
        let stat = stat_fixture(20);
        let (m, s) = stat.delay_stat("ND2_2", "Z", 0.05, 0.01).unwrap();
        assert!(m > 0.0 && s > 0.0);
        // Querying a missing pin is an error, not a panic.
        assert!(stat.delay_stat("ND2_2", "NOPE", 0.05, 0.01).is_err());
    }

    #[test]
    fn id_queries_match_name_queries() {
        let stat = stat_fixture(20);
        let id = stat.mean.cell_id("ND2_2").unwrap();
        assert_eq!(
            stat.delay_stat_id(id, 0, 0.05, 0.01).unwrap(),
            stat.delay_stat("ND2_2", "Z", 0.05, 0.01).unwrap()
        );
        let input = stat.mean.cells[id.index()]
            .input_pins()
            .position(|p| p.name == "A")
            .unwrap();
        assert_eq!(
            stat.delay_stat_arc_id(id, 0, input, 0.05, 0.01).unwrap(),
            stat.delay_stat_arc("ND2_2", "Z", "A", 0.05, 0.01).unwrap()
        );
        assert_eq!(
            stat.worst_delay_sigma_id(id),
            stat.worst_delay_sigma("ND2_2")
        );
        // Out-of-range ids are errors/None, not panics.
        assert!(stat.delay_stat_id(CellId(u32::MAX), 0, 0.05, 0.01).is_err());
        assert_eq!(stat.worst_delay_sigma_id(CellId(u32::MAX)), None);
    }

    #[test]
    fn sigma_columns_mirror_the_sigma_library() {
        let stat = stat_fixture(15);
        for (ci, cell) in stat.sigma.cells.iter().enumerate() {
            let expected: Vec<f64> = cell
                .output_pins()
                .flat_map(|p| &p.timing)
                .flat_map(|arc| {
                    TableKind::DELAYS
                        .into_iter()
                        .filter_map(|k| k.of(arc))
                        .flat_map(|t| t.values.iter().flatten().copied())
                        .collect::<Vec<_>>()
                })
                .collect();
            assert_eq!(stat.sigma_columns().cell(CellId(ci as u32)), &expected[..]);
        }
    }

    #[test]
    fn stat_table_returns_matched_shapes() {
        let stat = stat_fixture(10);
        let t = stat
            .stat_table("INV_1", "Z", 0, TableKind::CellRise)
            .unwrap();
        assert_eq!(t.mean.rows(), t.sigma.rows());
        let (m, s) = t.interpolate(0.05, 0.005).unwrap();
        assert!(m > 0.0 && s >= 0.0);
    }

    #[test]
    fn sample_count_is_recorded() {
        assert_eq!(stat_fixture(12).sample_count, 12);
    }

    #[test]
    fn power_tables_get_mean_and_sigma_too() {
        let stat = stat_fixture(30);
        let mean_p = stat
            .mean
            .cell("INV_1")
            .unwrap()
            .pin("Z")
            .unwrap()
            .internal_power[0]
            .rise_power
            .as_ref()
            .unwrap()
            .at(3, 3);
        let sigma_p = stat
            .sigma
            .cell("INV_1")
            .unwrap()
            .pin("Z")
            .unwrap()
            .internal_power[0]
            .rise_power
            .as_ref()
            .unwrap()
            .at(3, 3);
        assert!(mean_p > 0.0);
        assert!(sigma_p > 0.0, "power sigma must be aggregated, not copied");
        assert!(sigma_p < mean_p, "power sigma is a spread, not a copy");
    }

    #[test]
    fn single_library_gives_zero_sigma() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let stat = StatLibrary::from_libraries(std::slice::from_ref(&nominal)).unwrap();
        assert_eq!(stat.worst_delay_sigma("INV_1"), Some(0.0));
        assert_eq!(stat.mean.cells, nominal.cells);
    }
}
