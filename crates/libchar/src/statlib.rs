//! The statistical library of §IV.
//!
//! Given N Monte-Carlo characterized libraries, every LUT entry is collected
//! across the N copies and reduced to its mean and standard deviation. The
//! result is stored as **two structurally identical Liberty libraries**: one
//! whose tables hold means, one whose tables hold sigmas — exactly the
//! "library file with identical tables ... which contains local variation
//! statistics instead" described in the paper.

use std::error::Error;
use std::fmt;

use varitune_liberty::{InterpolateError, Library, Lut, TimingArc};
use varitune_variation::stats::Accumulator;

/// Which of an arc's four tables a query refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TableKind {
    /// Rise propagation delay.
    CellRise,
    /// Fall propagation delay.
    CellFall,
    /// Output rise transition.
    RiseTransition,
    /// Output fall transition.
    FallTransition,
}

impl TableKind {
    /// The two delay kinds.
    pub const DELAYS: [TableKind; 2] = [TableKind::CellRise, TableKind::CellFall];

    /// Selects this kind's table on `arc`.
    pub fn of(self, arc: &TimingArc) -> Option<&Lut> {
        match self {
            TableKind::CellRise => arc.cell_rise.as_ref(),
            TableKind::CellFall => arc.cell_fall.as_ref(),
            TableKind::RiseTransition => arc.rise_transition.as_ref(),
            TableKind::FallTransition => arc.fall_transition.as_ref(),
        }
    }
}

/// A mean/sigma pair of same-shaped tables for one arc table kind.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StatTable {
    /// Entry-wise means.
    pub mean: Lut,
    /// Entry-wise standard deviations.
    pub sigma: Lut,
}

impl StatTable {
    /// Interpolates `(mean, sigma)` at an operating point.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`] from either table.
    pub fn interpolate(&self, slew: f64, load: f64) -> Result<(f64, f64), InterpolateError> {
        Ok((
            self.mean.interpolate(slew, load)?,
            self.sigma.interpolate(slew, load)?,
        ))
    }
}

/// Error building a [`StatLibrary`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildStatError {
    /// No input libraries were provided.
    Empty,
    /// The input libraries do not share an identical cell/arc/table
    /// structure.
    StructureMismatch {
        /// Index of the offending library in the input slice.
        library: usize,
        /// Description of the first difference found.
        detail: String,
    },
}

impl fmt::Display for BuildStatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildStatError::Empty => write!(f, "no input libraries"),
            BuildStatError::StructureMismatch { library, detail } => {
                write!(f, "library #{library} differs structurally: {detail}")
            }
        }
    }
}

impl Error for BuildStatError {}

/// The statistical library: per-entry mean and sigma across N characterized
/// libraries, stored as two structurally identical Liberty libraries.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StatLibrary {
    /// Library whose LUT values are entry-wise means.
    pub mean: Library,
    /// Library whose LUT values are entry-wise standard deviations.
    pub sigma: Library,
    /// Number of Monte-Carlo libraries the statistics were computed from.
    pub sample_count: usize,
}

impl StatLibrary {
    /// Builds the statistical library from `libs` (the §IV procedure).
    ///
    /// # Errors
    ///
    /// Returns [`BuildStatError::Empty`] for an empty slice and
    /// [`BuildStatError::StructureMismatch`] if any library's cells, arcs or
    /// table shapes differ from the first library's.
    pub fn from_libraries(libs: &[Library]) -> Result<Self, BuildStatError> {
        let first = libs.first().ok_or(BuildStatError::Empty)?;
        for (k, lib) in libs.iter().enumerate().skip(1) {
            check_same_structure(first, lib)
                .map_err(|detail| BuildStatError::StructureMismatch { library: k, detail })?;
        }

        let mut mean = first.clone();
        mean.name = "STAT_MEAN".to_string();
        let mut sigma = first.clone();
        sigma.name = "STAT_SIGMA".to_string();

        for ci in 0..first.cells.len() {
            for pi in 0..first.cells[ci].pins.len() {
                for ai in 0..first.cells[ci].pins[pi].timing.len() {
                    for kind in [
                        TableKind::CellRise,
                        TableKind::CellFall,
                        TableKind::RiseTransition,
                        TableKind::FallTransition,
                    ] {
                        if kind.of(&first.cells[ci].pins[pi].timing[ai]).is_none() {
                            continue;
                        }
                        let (rows, cols) = {
                            let t = kind
                                .of(&first.cells[ci].pins[pi].timing[ai])
                                .expect("checked above");
                            (t.rows(), t.cols())
                        };
                        for i in 0..rows {
                            for j in 0..cols {
                                // §IV: pull the same entry out of every
                                // library into a temporary table, then store
                                // its mean and sigma at the same coordinates.
                                let mut acc = Accumulator::new();
                                for lib in libs {
                                    let t = kind
                                        .of(&lib.cells[ci].pins[pi].timing[ai])
                                        .expect("structure checked");
                                    acc.push(t.at(i, j));
                                }
                                set_entry(&mut mean, ci, pi, ai, kind, i, j, acc.mean());
                                set_entry(&mut sigma, ci, pi, ai, kind, i, j, acc.std_dev());
                            }
                        }
                    }
                }
                // Internal-power tables get the same per-entry treatment
                // (the §III extension to transition power).
                for gi in 0..first.cells[ci].pins[pi].internal_power.len() {
                    for rise in [true, false] {
                        let Some(t0) = pick_power(first, ci, pi, gi, rise) else {
                            continue;
                        };
                        let (rows, cols) = (t0.rows(), t0.cols());
                        for i in 0..rows {
                            for j in 0..cols {
                                let mut acc = Accumulator::new();
                                for lib in libs {
                                    acc.push(
                                        pick_power(lib, ci, pi, gi, rise)
                                            .expect("structure checked")
                                            .at(i, j),
                                    );
                                }
                                set_power_entry(&mut mean, ci, pi, gi, rise, i, j, acc.mean());
                                set_power_entry(
                                    &mut sigma,
                                    ci,
                                    pi,
                                    gi,
                                    rise,
                                    i,
                                    j,
                                    acc.std_dev(),
                                );
                            }
                        }
                    }
                }
            }
        }

        Ok(Self {
            mean,
            sigma,
            sample_count: libs.len(),
        })
    }

    /// The mean/sigma pair for one arc table, cloned into a [`StatTable`].
    pub fn stat_table(
        &self,
        cell: &str,
        pin: &str,
        arc_idx: usize,
        kind: TableKind,
    ) -> Option<StatTable> {
        let m = kind.of(self.mean.cell(cell)?.pin(pin)?.timing.get(arc_idx)?)?;
        let s = kind.of(self.sigma.cell(cell)?.pin(pin)?.timing.get(arc_idx)?)?;
        Some(StatTable {
            mean: m.clone(),
            sigma: s.clone(),
        })
    }

    /// Worst-case (max over arcs and rise/fall) delay `(mean, sigma)` of
    /// `cell`'s output pin `pin` at an operating point — the quantity the
    /// statistical STA attaches to a mapped instance.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns `EmptyTable` if the pin has
    /// no delay tables.
    pub fn delay_stat(
        &self,
        cell: &str,
        pin: &str,
        slew: f64,
        load: f64,
    ) -> Result<(f64, f64), InterpolateError> {
        let mc = self
            .mean
            .cell(cell)
            .and_then(|c| c.pin(pin))
            .ok_or(InterpolateError::EmptyTable)?;
        let sc = self
            .sigma
            .cell(cell)
            .and_then(|c| c.pin(pin))
            .ok_or(InterpolateError::EmptyTable)?;
        let mut best: Option<(f64, f64)> = None;
        for (ma, sa) in mc.timing.iter().zip(&sc.timing) {
            for kind in TableKind::DELAYS {
                let (Some(mt), Some(st)) = (kind.of(ma), kind.of(sa)) else {
                    continue;
                };
                let m = mt.interpolate(slew, load)?;
                let s = st.interpolate(slew, load)?;
                best = Some(match best {
                    Some((bm, bs)) if bm >= m => (bm, bs),
                    _ => (m, s),
                });
            }
        }
        best.ok_or(InterpolateError::EmptyTable)
    }

    /// Like [`StatLibrary::delay_stat`], but restricted to the arc from one
    /// `related_pin` — the precise query used when the critical input of a
    /// path cell is known (worst over rise/fall only).
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns `EmptyTable` when the cell,
    /// pin or arc cannot be found.
    pub fn delay_stat_arc(
        &self,
        cell: &str,
        pin: &str,
        related_pin: &str,
        slew: f64,
        load: f64,
    ) -> Result<(f64, f64), InterpolateError> {
        let find = |lib: &Library| -> Option<usize> {
            lib.cell(cell)?
                .pin(pin)?
                .timing
                .iter()
                .position(|a| a.related_pin == related_pin)
        };
        let (Some(ai_m), Some(ai_s)) = (find(&self.mean), find(&self.sigma)) else {
            return Err(InterpolateError::EmptyTable);
        };
        let ma = &self.mean.cell(cell).expect("found above").pin(pin).expect("found above").timing[ai_m];
        let sa = &self.sigma.cell(cell).expect("found above").pin(pin).expect("found above").timing[ai_s];
        let mut best: Option<(f64, f64)> = None;
        for kind in TableKind::DELAYS {
            let (Some(mt), Some(st)) = (kind.of(ma), kind.of(sa)) else {
                continue;
            };
            let m = mt.interpolate(slew, load)?;
            let s = st.interpolate(slew, load)?;
            best = Some(match best {
                Some((bm, bs)) if bm >= m => (bm, bs),
                _ => (m, s),
            });
        }
        best.ok_or(InterpolateError::EmptyTable)
    }

    /// The largest delay-sigma entry anywhere in `cell`'s tables — a quick
    /// scalar summary used in reports and doc examples.
    pub fn worst_delay_sigma(&self, cell: &str) -> Option<f64> {
        let c = self.sigma.cell(cell)?;
        let mut worst: Option<f64> = None;
        for pin in c.output_pins() {
            for arc in &pin.timing {
                for kind in TableKind::DELAYS {
                    if let Some(v) = kind.of(arc).and_then(Lut::max_value) {
                        worst = Some(worst.map_or(v, |w| w.max(v)));
                    }
                }
            }
        }
        worst
    }
}

#[allow(clippy::too_many_arguments)]
fn set_entry(
    lib: &mut Library,
    ci: usize,
    pi: usize,
    ai: usize,
    kind: TableKind,
    i: usize,
    j: usize,
    v: f64,
) {
    let arc = &mut lib.cells[ci].pins[pi].timing[ai];
    let t = match kind {
        TableKind::CellRise => arc.cell_rise.as_mut(),
        TableKind::CellFall => arc.cell_fall.as_mut(),
        TableKind::RiseTransition => arc.rise_transition.as_mut(),
        TableKind::FallTransition => arc.fall_transition.as_mut(),
    };
    t.expect("structure checked").values[i][j] = v;
}

fn pick_power(lib: &Library, ci: usize, pi: usize, gi: usize, rise: bool) -> Option<&Lut> {
    let g = &lib.cells[ci].pins[pi].internal_power[gi];
    if rise {
        g.rise_power.as_ref()
    } else {
        g.fall_power.as_ref()
    }
}

#[allow(clippy::too_many_arguments)]
fn set_power_entry(
    lib: &mut Library,
    ci: usize,
    pi: usize,
    gi: usize,
    rise: bool,
    i: usize,
    j: usize,
    v: f64,
) {
    let g = &mut lib.cells[ci].pins[pi].internal_power[gi];
    let t = if rise {
        g.rise_power.as_mut()
    } else {
        g.fall_power.as_mut()
    };
    t.expect("structure checked").values[i][j] = v;
}

fn check_same_structure(a: &Library, b: &Library) -> Result<(), String> {
    if a.cells.len() != b.cells.len() {
        return Err(format!(
            "cell count {} vs {}",
            a.cells.len(),
            b.cells.len()
        ));
    }
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        if ca.name != cb.name {
            return Err(format!("cell name {} vs {}", ca.name, cb.name));
        }
        if ca.pins.len() != cb.pins.len() {
            return Err(format!("{}: pin count differs", ca.name));
        }
        for (pa, pb) in ca.pins.iter().zip(&cb.pins) {
            if pa.name != pb.name
                || pa.timing.len() != pb.timing.len()
                || pa.internal_power.len() != pb.internal_power.len()
            {
                return Err(format!("{}/{}: arc structure differs", ca.name, pa.name));
            }
            for (ta, tb) in pa.timing.iter().zip(&pb.timing) {
                for kind in [
                    TableKind::CellRise,
                    TableKind::CellFall,
                    TableKind::RiseTransition,
                    TableKind::FallTransition,
                ] {
                    match (kind.of(ta), kind.of(tb)) {
                        (None, None) => {}
                        (Some(x), Some(y))
                            if x.rows() == y.rows()
                                && x.cols() == y.cols()
                                && x.index_slew == y.index_slew
                                && x.index_load == y.index_load => {}
                        _ => {
                            return Err(format!(
                                "{}/{}: table {:?} shape differs",
                                ca.name, pa.name, kind
                            ))
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_mc_libraries, generate_nominal, GenerateConfig};

    fn stat_fixture(n: usize) -> StatLibrary {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let libs = generate_mc_libraries(&nominal, &cfg, n, 1234);
        StatLibrary::from_libraries(&libs).unwrap()
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(
            StatLibrary::from_libraries(&[]).unwrap_err(),
            BuildStatError::Empty
        );
    }

    #[test]
    fn structure_mismatch_is_detected() {
        let cfg = GenerateConfig::small_for_tests();
        let a = generate_nominal(&cfg);
        let mut b = a.clone();
        b.cells.pop();
        let err = StatLibrary::from_libraries(&[a, b]).unwrap_err();
        assert!(matches!(
            err,
            BuildStatError::StructureMismatch { library: 1, .. }
        ));
    }

    #[test]
    fn mean_tracks_nominal() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let stat = stat_fixture(50);
        let nom = nominal.cell("INV_2").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap()
            .at(3, 3);
        let mean = stat.mean.cell("INV_2").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap()
            .at(3, 3);
        assert!((mean - nom).abs() / nom < 0.05, "{mean} vs {nom}");
    }

    #[test]
    fn sigma_is_positive_everywhere() {
        let stat = stat_fixture(20);
        for cell in &stat.sigma.cells {
            for pin in cell.output_pins() {
                for arc in &pin.timing {
                    for t in arc.all_tables() {
                        assert!(t.min_value().unwrap() > 0.0, "{}", cell.name);
                    }
                }
            }
        }
    }

    #[test]
    fn sigma_shrinks_with_drive_strength() {
        let stat = stat_fixture(40);
        let s1 = stat.worst_delay_sigma("INV_1").unwrap();
        let s8 = stat.worst_delay_sigma("INV_8").unwrap();
        assert!(s8 < s1, "INV_8 {s8} should be below INV_1 {s1}");
    }

    #[test]
    fn sigma_surface_climbs_toward_heavy_corner() {
        // The Fig. 4 shape: the far (slow slew, heavy load) corner of the
        // sigma LUT dominates the origin.
        let stat = stat_fixture(40);
        let lut = stat.sigma.cell("INV_1").unwrap().pin("Z").unwrap().timing[0]
            .cell_rise
            .as_ref()
            .unwrap();
        assert!(lut.at(6, 6) > lut.at(0, 0) * 2.0);
    }

    #[test]
    fn delay_stat_interpolates_and_takes_worst_arc() {
        let stat = stat_fixture(20);
        let (m, s) = stat.delay_stat("ND2_2", "Z", 0.05, 0.01).unwrap();
        assert!(m > 0.0 && s > 0.0);
        // Querying a missing pin is an error, not a panic.
        assert!(stat.delay_stat("ND2_2", "NOPE", 0.05, 0.01).is_err());
    }

    #[test]
    fn stat_table_returns_matched_shapes() {
        let stat = stat_fixture(10);
        let t = stat
            .stat_table("INV_1", "Z", 0, TableKind::CellRise)
            .unwrap();
        assert_eq!(t.mean.rows(), t.sigma.rows());
        let (m, s) = t.interpolate(0.05, 0.005).unwrap();
        assert!(m > 0.0 && s >= 0.0);
    }

    #[test]
    fn sample_count_is_recorded() {
        assert_eq!(stat_fixture(12).sample_count, 12);
    }

    #[test]
    fn power_tables_get_mean_and_sigma_too() {
        let stat = stat_fixture(30);
        let mean_p = stat.mean.cell("INV_1").unwrap().pin("Z").unwrap().internal_power[0]
            .rise_power
            .as_ref()
            .unwrap()
            .at(3, 3);
        let sigma_p = stat.sigma.cell("INV_1").unwrap().pin("Z").unwrap().internal_power[0]
            .rise_power
            .as_ref()
            .unwrap()
            .at(3, 3);
        assert!(mean_p > 0.0);
        assert!(sigma_p > 0.0, "power sigma must be aggregated, not copied");
        assert!(sigma_p < mean_p, "power sigma is a spread, not a copy");
    }

    #[test]
    fn single_library_gives_zero_sigma() {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let stat = StatLibrary::from_libraries(std::slice::from_ref(&nominal)).unwrap();
        assert_eq!(stat.worst_delay_sigma("INV_1"), Some(0.0));
        assert_eq!(stat.mean.cells, nominal.cells);
    }
}
