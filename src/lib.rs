//! # varitune
//!
//! Facade crate for the *varitune* workspace — a from-scratch Rust
//! reproduction of **"Standard cell library tuning for variability tolerant
//! designs"** (Fabrie, DATE 2014): reduce a digital design's sensitivity to
//! local (intra-die) process variation by restricting each library cell's
//! look-up table to its low-sigma slew/load region and letting synthesis
//! work inside those windows.
//!
//! This crate re-exports the public API of every subsystem crate:
//!
//! * [`liberty`] — Liberty `.lib` data model, parser and writer,
//! * [`variation`] — process-variation models, statistics, Monte Carlo,
//! * [`libchar`] — synthetic library generation, characterization and the
//!   statistical (mean/sigma) library of §IV,
//! * [`netlist`] — gate-level IR and the 20 k-gate microcontroller
//!   generator,
//! * [`sta`] — static timing analysis and statistical path/design timing,
//! * [`synth`] — technology mapping and timing-driven optimization under
//!   per-pin operating windows,
//! * [`core`] — the paper's contribution: the five tuning methods,
//!   threshold extraction, largest-rectangle LUT restriction, and the
//!   end-to-end [`core::flow`] API,
//! * [`trace`] — deterministic observability: stage spans, mergeable
//!   counters/histograms, and the `FlowTrace` flight recorder every
//!   bench binary can dump with `--trace`.
//!
//! # Quickstart
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use varitune::core::flow::{Comparison, Flow, FlowConfig};
//! use varitune::core::{TuningMethod, TuningParams};
//! use varitune::synth::SynthConfig;
//!
//! let flow = Flow::prepare(FlowConfig::paper_scale())?;
//! let cfg = SynthConfig::with_clock_period(2.41);
//! let baseline = flow.run_baseline(&cfg)?;
//! let (_lib, tuned) = flow.run_tuned(
//!     TuningMethod::SigmaCeiling,
//!     TuningParams::with_sigma_ceiling(0.02),
//!     &cfg,
//! )?;
//! let cmp = Comparison::between(&baseline, &tuned);
//! println!(
//!     "sigma -{:.0}% at +{:.0}% area",
//!     cmp.sigma_reduction_pct(),
//!     cmp.area_increase_pct()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

pub use varitune_core as core;
pub use varitune_libchar as libchar;
pub use varitune_liberty as liberty;
pub use varitune_netlist as netlist;
pub use varitune_sta as sta;
pub use varitune_synth as synth;
pub use varitune_trace as trace;
pub use varitune_variation as variation;
