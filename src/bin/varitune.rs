//! `varitune` — command-line front end to the library-tuning flow.
//!
//! ```text
//! varitune gen-lib   [--small] [--corner tt|ff|ss] --out LIB.lib
//! varitune stat-lib  [--small] [--n 50] [--seed 42] --out-mean M.lib --out-sigma S.lib
//! varitune tune      --mean M.lib --sigma S.lib --method METHOD --value V --out W.windows
//! varitune synth     --lib M.lib --period NS [--windows W.windows]
//!                    [--design small|paper] [--verilog OUT.v]
//! ```
//!
//! Methods: `strength-load-slope`, `strength-slew-slope`, `load-slope`,
//! `slew-slope`, `sigma-ceiling`.
//!
//! Files use open formats: Liberty for libraries, the line-oriented
//! `.windows` sidecar for operating windows, structural Verilog for the
//! synthesized netlist.

use std::collections::BTreeMap;
use std::process::ExitCode;

use varitune::core::{tune, TuningMethod, TuningParams};
use varitune::libchar::{generate_mc_libraries, generate_nominal, GenerateConfig, StatLibrary};
use varitune::liberty::{parse_library, write_library};
use varitune::netlist::{generate_mcu, McuConfig};
use varitune::synth::{synthesize, write_verilog, LibraryConstraints, SynthConfig};
use varitune::variation::ProcessCorner;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliError = Box<dyn std::error::Error>;

fn run() -> Result<(), CliError> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "help".to_string());
    let opts = parse_options(args)?;
    match command.as_str() {
        "gen-lib" => gen_lib(&opts),
        "stat-lib" => stat_lib(&opts),
        "tune" => tune_cmd(&opts),
        "synth" => synth_cmd(&opts),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`; try `varitune help`").into()),
    }
}

fn print_help() {
    println!(
        "varitune — standard-cell library tuning for variability tolerant designs\n\
         \n\
         commands:\n\
           gen-lib   generate the synthetic 304-cell Liberty library\n\
           stat-lib  run Monte-Carlo characterization, emit mean/sigma libraries\n\
           tune      extract per-pin operating windows from a statistical library\n\
           synth     map + optimize the built-in microcontroller, report timing/area\n\
         \n\
         run `cargo run --release -p varitune-bench --bin experiments` to\n\
         regenerate the paper's tables and figures."
    );
}

fn parse_options(args: impl Iterator<Item = String>) -> Result<BTreeMap<String, String>, CliError> {
    let mut opts = BTreeMap::new();
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument `{a}` (options start with --)").into());
        };
        // Flags without values: --small.
        let value = if key == "small" {
            "true".to_string()
        } else {
            args.next()
                .ok_or_else(|| format!("--{key} needs a value"))?
        };
        opts.insert(key.to_string(), value);
    }
    Ok(opts)
}

fn required<'a>(opts: &'a BTreeMap<String, String>, key: &str) -> Result<&'a str, CliError> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required option --{key}").into())
}

fn generate_config(opts: &BTreeMap<String, String>) -> Result<GenerateConfig, CliError> {
    let mut cfg = if opts.contains_key("small") {
        GenerateConfig::small_for_tests()
    } else {
        GenerateConfig::full()
    };
    if let Some(corner) = opts.get("corner") {
        let c = match corner.as_str() {
            "tt" => ProcessCorner::Typical,
            "ff" => ProcessCorner::Fast,
            "ss" => ProcessCorner::Slow,
            other => return Err(format!("unknown corner `{other}` (tt|ff|ss)").into()),
        };
        cfg.name = c.library_name().to_string();
        cfg.corner_factor = c.delay_factor();
    }
    Ok(cfg)
}

fn gen_lib(opts: &BTreeMap<String, String>) -> Result<(), CliError> {
    let cfg = generate_config(opts)?;
    let out = required(opts, "out")?;
    let lib = generate_nominal(&cfg);
    std::fs::write(out, write_library(&lib)?)?;
    println!("wrote {} ({} cells)", out, lib.cells.len());
    Ok(())
}

fn stat_lib(opts: &BTreeMap<String, String>) -> Result<(), CliError> {
    let cfg = generate_config(opts)?;
    let n: usize = opts.get("n").map_or(Ok(50), |s| s.parse())?;
    let seed: u64 = opts.get("seed").map_or(Ok(42), |s| s.parse())?;
    let out_mean = required(opts, "out-mean")?;
    let out_sigma = required(opts, "out-sigma")?;
    let nominal = generate_nominal(&cfg);
    let mc = generate_mc_libraries(&nominal, &cfg, n, seed);
    let stat = StatLibrary::from_libraries(&mc)?;
    std::fs::write(out_mean, write_library(&stat.mean)?)?;
    std::fs::write(out_sigma, write_library(&stat.sigma)?)?;
    println!("wrote {out_mean} and {out_sigma} from {n} MC libraries (seed {seed})");
    Ok(())
}

fn parse_method(name: &str) -> Result<TuningMethod, CliError> {
    Ok(match name {
        "strength-load-slope" => TuningMethod::CellStrengthLoadSlope,
        "strength-slew-slope" => TuningMethod::CellStrengthSlewSlope,
        "load-slope" => TuningMethod::CellLoadSlope,
        "slew-slope" => TuningMethod::CellSlewSlope,
        "sigma-ceiling" => TuningMethod::SigmaCeiling,
        other => {
            return Err(format!(
                "unknown method `{other}` (strength-load-slope, strength-slew-slope, \
                 load-slope, slew-slope, sigma-ceiling)"
            )
            .into())
        }
    })
}

fn tune_cmd(opts: &BTreeMap<String, String>) -> Result<(), CliError> {
    let mean = parse_library(&std::fs::read_to_string(required(opts, "mean")?)?)?;
    let sigma = parse_library(&std::fs::read_to_string(required(opts, "sigma")?)?)?;
    let method = parse_method(required(opts, "method")?)?;
    let value: f64 = required(opts, "value")?.parse()?;
    let out = required(opts, "out")?;
    let stat = StatLibrary::from_parts(mean, sigma, 0);
    let params = match method {
        TuningMethod::CellStrengthLoadSlope | TuningMethod::CellLoadSlope => {
            TuningParams::with_load_slope(value)
        }
        TuningMethod::CellStrengthSlewSlope | TuningMethod::CellSlewSlope => {
            TuningParams::with_slew_slope(value)
        }
        TuningMethod::SigmaCeiling => TuningParams::with_sigma_ceiling(value),
    };
    let tuned = tune(&stat, method, params);
    std::fs::write(out, tuned.constraints.to_text())?;
    println!(
        "wrote {out}: {} pins restricted, {} unrestricted ({} clusters)",
        tuned.restricted_pins,
        tuned.unrestricted_pins,
        tuned.cluster_thresholds.len()
    );
    Ok(())
}

fn synth_cmd(opts: &BTreeMap<String, String>) -> Result<(), CliError> {
    let lib = parse_library(&std::fs::read_to_string(required(opts, "lib")?)?)?;
    let period: f64 = required(opts, "period")?.parse()?;
    let constraints = match opts.get("windows") {
        Some(path) => LibraryConstraints::from_text(&std::fs::read_to_string(path)?)?,
        None => LibraryConstraints::unconstrained(),
    };
    let design = match opts.get("design").map(String::as_str) {
        Some("paper") | None => generate_mcu(&McuConfig::paper_scale()),
        Some("small") => generate_mcu(&McuConfig::small_for_tests()),
        Some(other) => return Err(format!("unknown design `{other}` (small|paper)").into()),
    };
    let result = synthesize(
        &design,
        &lib,
        &constraints,
        &SynthConfig::with_clock_period(period),
    )?;
    println!(
        "design {}: {} gates mapped, area {:.0} um^2, worst slack {:.3} ns, timing {}",
        design.name,
        result.design.netlist.gates.len(),
        result.area,
        result.report.worst_slack(),
        if result.met_timing { "met" } else { "VIOLATED" }
    );
    println!(
        "iterations {}, buffers inserted {}",
        result.iterations, result.buffers_inserted
    );
    for (cell, n) in result.design.cell_usage(&lib).into_iter().take(10) {
        println!("  {cell:<10} x{n}");
    }
    if let Some(vout) = opts.get("verilog") {
        std::fs::write(vout, write_verilog(&result.design, &lib)?)?;
        println!("wrote {vout}");
    }
    if let Some(sdf_out) = opts.get("sdf") {
        std::fs::write(
            sdf_out,
            varitune::sta::write_sdf(&result.design, &lib, &result.report)?,
        )?;
        println!("wrote {sdf_out}");
    }
    Ok(())
}
